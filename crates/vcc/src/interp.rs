//! Direct interpreter for the virtual-register IR.
//!
//! This executes a [`Kernel`] *before* register allocation, providing an
//! independent golden model: the allocated, lowered trace executed by
//! `oov-exec` must leave the same data-space memory image as the IR
//! interpreted here. Any allocator or lowering bug (wrong spill slot,
//! clobbered live value, misordered memory op) breaks the equivalence.
//!
//! The operation semantics intentionally mirror `oov_exec::Machine` — the
//! two implementations are kept separate so that a bug in one cannot hide
//! in the other. Like the machine, the interpreter is batched: vector
//! memory traffic goes through the [`MemImage`] bulk API and vector
//! values reuse their destination buffers (a virtual register redefined
//! on every loop iteration recycles one allocation), with operands
//! snapshotted into scratch buffers before the destination is taken so
//! `dst == src` forms stay well defined.

use std::collections::HashMap;

use oov_exec::MemImage;
use oov_isa::Opcode;

use crate::ir::{KInst, Kernel, VirtReg};

/// A virtual-register value.
#[derive(Debug, Clone)]
enum Value {
    Scalar(u64),
    /// Vector contents; the length records how many elements were written
    /// by the defining instruction.
    Vector(Vec<u64>),
    Mask(u128),
}

/// Interprets kernels over virtual registers.
#[derive(Debug, Default)]
pub struct IrInterp {
    regs: HashMap<VirtReg, Value>,
    mem: MemImage,
    /// Operand snapshot buffers, recycled across instructions.
    scratch_a: Vec<u64>,
    scratch_b: Vec<u64>,
}

impl IrInterp {
    /// Fresh interpreter with empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The memory image (borrow).
    #[must_use]
    pub fn memory(&self) -> &MemImage {
        &self.mem
    }

    /// Runs a kernel from scratch: forks the kernel's cached base
    /// image (no per-run seeding), executes every segment over its
    /// iteration space, and returns the final image.
    #[must_use]
    pub fn run_kernel(kernel: &Kernel) -> MemImage {
        let mut it = IrInterp::new();
        it.mem = MemImage::fork(kernel.base_image());
        for seg in kernel.segments() {
            for outer in 0..u64::from(seg.outer_trips) {
                // Carried registers start at zero each outer iteration,
                // matching the lowered code's zero-init prologue.
                for &c in &seg.carried {
                    let zero = match c {
                        VirtReg::V(_) => Value::Vector(it.take_vec_buffer(c, 128)),
                        VirtReg::M(_) => Value::Mask(0),
                        _ => Value::Scalar(0),
                    };
                    it.regs.insert(c, zero);
                }
                for iter in 0..u64::from(seg.trips) {
                    for inst in &seg.body {
                        it.step(inst, outer, iter);
                    }
                }
            }
        }
        it.mem
    }

    fn scalar(&self, v: VirtReg) -> u64 {
        match self.regs.get(&v) {
            Some(Value::Scalar(x)) => *x,
            Some(_) => panic!("{v} is not scalar"),
            None => panic!("use of {v} before definition"),
        }
    }

    /// Borrow of the first `vl` elements of a vector value, with the
    /// definition/width checks every read performs.
    fn vector_ref(&self, v: VirtReg, vl: usize) -> &[u64] {
        match self.regs.get(&v) {
            Some(Value::Vector(xs)) => {
                assert!(
                    xs.len() >= vl,
                    "kernel reads {vl} elements of {v} but only {} were written",
                    xs.len()
                );
                &xs[..vl]
            }
            Some(_) => panic!("{v} is not a vector"),
            None => panic!("use of {v} before definition"),
        }
    }

    fn mask(&self, v: VirtReg) -> u128 {
        match self.regs.get(&v) {
            Some(Value::Mask(m)) => *m,
            Some(_) => panic!("{v} is not a mask"),
            None => panic!("use of {v} before definition"),
        }
    }

    /// Snapshots `vl` elements of `v` into `out` (cleared first).
    fn read_vector_into(&self, v: VirtReg, vl: usize, out: &mut Vec<u64>) {
        out.clear();
        out.extend_from_slice(self.vector_ref(v, vl));
    }

    /// Snapshots the second operand of a vector op into `out`: vector,
    /// scalar broadcast, or immediate — mirroring
    /// `oov_exec::Machine::fill_vector_operand`.
    fn read_vec_operand_into(&self, inst: &KInst, n: usize, vl: usize, out: &mut Vec<u64>) {
        out.clear();
        match inst.srcs.get(n) {
            Some(&r @ VirtReg::V(_)) => out.extend_from_slice(self.vector_ref(r, vl)),
            Some(&r @ (VirtReg::S(_) | VirtReg::A(_))) => out.resize(vl, self.scalar(r)),
            Some(&r @ VirtReg::M(_)) => panic!("{r} cannot be a vector operand"),
            None => out.resize(vl, inst.imm as u64),
        }
    }

    fn scalar_operand(&self, inst: &KInst, n: usize) -> u64 {
        match inst.srcs.get(n) {
            Some(&r) => self.scalar(r),
            None => inst.imm as u64,
        }
    }

    /// Recycles the destination's previous vector buffer (if it has
    /// one), returning it zeroed at length `vl`. Callers must snapshot
    /// every source first — after this the old value of `r` is gone.
    fn take_vec_buffer(&mut self, r: VirtReg, vl: usize) -> Vec<u64> {
        match self.regs.get_mut(&r) {
            Some(Value::Vector(xs)) => {
                let mut v = std::mem::take(xs);
                v.clear();
                v.resize(vl, 0);
                v
            }
            _ => vec![0; vl],
        }
    }

    fn step(&mut self, inst: &KInst, outer: u64, iter: u64) {
        use Opcode::*;
        let vl = inst.vl as usize;
        let base = inst.addr.as_ref().map(|a| a.at(outer, iter));
        match inst.op {
            SAddA | SAdd => {
                let v = self
                    .scalar_operand(inst, 0)
                    .wrapping_add(self.scalar_operand(inst, 1))
                    .wrapping_add_signed(if inst.srcs.len() > 1 { inst.imm } else { 0 });
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(v));
            }
            SMul => {
                let v = self
                    .scalar_operand(inst, 0)
                    .wrapping_mul(self.scalar_operand(inst, 1).max(1));
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(v));
            }
            SDiv => {
                let v = self.scalar_operand(inst, 0) / self.scalar_operand(inst, 1).max(1);
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(v));
            }
            SMove => {
                let v = self.scalar_operand(inst, 0);
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(v));
            }
            SLui => {
                self.regs
                    .insert(inst.dst.unwrap(), Value::Scalar(inst.imm as u64));
            }
            SetVl | SetVs | Branch | Jump | Call | Ret => {}
            SLoad => {
                let v = self.mem.load(base.expect("load without addr"));
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(v));
            }
            SStore => {
                let v = self.scalar_operand(inst, 0);
                self.mem.store(base.expect("store without addr"), v);
            }
            VLoad => {
                let a = inst.addr.as_ref().unwrap();
                let b = base.unwrap();
                let mut xs = self.take_vec_buffer(inst.dst.unwrap(), vl);
                self.mem.load_strided(b, a.stride_bytes, &mut xs);
                self.regs.insert(inst.dst.unwrap(), Value::Vector(xs));
            }
            VStore => {
                let a = inst.addr.as_ref().unwrap();
                let b = base.unwrap();
                let mut data = std::mem::take(&mut self.scratch_a);
                self.read_vector_into(inst.srcs[0], vl, &mut data);
                self.mem.store_strided(b, a.stride_bytes, &data);
                self.scratch_a = data;
            }
            VGather => {
                let b = base.unwrap();
                let mut idx = std::mem::take(&mut self.scratch_a);
                self.read_vector_into(inst.srcs[0], vl, &mut idx);
                let mut xs = self.take_vec_buffer(inst.dst.unwrap(), vl);
                self.mem.load_indexed(b, &idx, &mut xs);
                self.regs.insert(inst.dst.unwrap(), Value::Vector(xs));
                self.scratch_a = idx;
            }
            VScatter => {
                let b = base.unwrap();
                let mut data = std::mem::take(&mut self.scratch_a);
                let mut idx = std::mem::take(&mut self.scratch_b);
                self.read_vector_into(inst.srcs[0], vl, &mut data);
                self.read_vector_into(inst.srcs[1], vl, &mut idx);
                self.mem.store_indexed(b, &idx, &data);
                self.scratch_a = data;
                self.scratch_b = idx;
            }
            VAdd | VMul | VDiv | VLogic | VShift => {
                let mut av = std::mem::take(&mut self.scratch_a);
                let mut bv = std::mem::take(&mut self.scratch_b);
                self.read_vector_into(inst.srcs[0], vl, &mut av);
                self.read_vec_operand_into(inst, 1, vl, &mut bv);
                let mut xs = self.take_vec_buffer(inst.dst.unwrap(), vl);
                let lanes = xs.iter_mut().zip(av.iter().zip(&bv));
                match inst.op {
                    VAdd => lanes.for_each(|(d, (&x, &y))| *d = x.wrapping_add(y)),
                    VMul => lanes.for_each(|(d, (&x, &y))| *d = x.wrapping_mul(y.max(1))),
                    VDiv => lanes.for_each(|(d, (&x, &y))| *d = x / y.max(1)),
                    VLogic => lanes.for_each(|(d, (&x, &y))| *d = x ^ y),
                    VShift => lanes.for_each(|(d, (&x, &y))| *d = x.rotate_left(1) ^ y),
                    _ => unreachable!(),
                }
                self.regs.insert(inst.dst.unwrap(), Value::Vector(xs));
                self.scratch_a = av;
                self.scratch_b = bv;
            }
            VSqrt => {
                let mut av = std::mem::take(&mut self.scratch_a);
                self.read_vector_into(inst.srcs[0], vl, &mut av);
                let mut xs = self.take_vec_buffer(inst.dst.unwrap(), vl);
                for (d, &x) in xs.iter_mut().zip(&av) {
                    *d = x.isqrt();
                }
                self.regs.insert(inst.dst.unwrap(), Value::Vector(xs));
                self.scratch_a = av;
            }
            VCmp => {
                let mut av = std::mem::take(&mut self.scratch_a);
                let mut bv = std::mem::take(&mut self.scratch_b);
                self.read_vector_into(inst.srcs[0], vl, &mut av);
                self.read_vec_operand_into(inst, 1, vl, &mut bv);
                let mut m = 0u128;
                for i in 0..vl {
                    if av[i] > bv[i] {
                        m |= 1 << i;
                    }
                }
                self.regs.insert(inst.dst.unwrap(), Value::Mask(m));
                self.scratch_a = av;
                self.scratch_b = bv;
            }
            VMerge => {
                let mut av = std::mem::take(&mut self.scratch_a);
                let mut bv = std::mem::take(&mut self.scratch_b);
                self.read_vector_into(inst.srcs[0], vl, &mut av);
                self.read_vector_into(inst.srcs[1], vl, &mut bv);
                let m = self.mask(inst.srcs[2]);
                let mut xs = self.take_vec_buffer(inst.dst.unwrap(), vl);
                for (i, d) in xs.iter_mut().enumerate() {
                    *d = if m & (1 << i) != 0 { av[i] } else { bv[i] };
                }
                self.regs.insert(inst.dst.unwrap(), Value::Vector(xs));
                self.scratch_a = av;
                self.scratch_b = bv;
            }
            VReduce => {
                let sum = self
                    .vector_ref(inst.srcs[0], vl)
                    .iter()
                    .fold(0u64, |acc, &x| acc.wrapping_add(x));
                self.regs.insert(inst.dst.unwrap(), Value::Scalar(sum));
            }
            VMaskOp => {
                let a = self.mask(inst.srcs[0]);
                let b = inst.srcs.get(1).map(|&r| self.mask(r)).unwrap_or(a);
                self.regs.insert(inst.dst.unwrap(), Value::Mask(a ^ b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interprets_simple_kernel() {
        let mut k = Kernel::new("t");
        let arr = k.array_init(256, |i| i);
        let out = k.array(256);
        let mut b = k.loop_build(2);
        let x = b.vload(arr, 0, 1, 64, 64, 0);
        let y = b.vadd(x, x, 64);
        b.vstore(y, out, 0, 1, 64, 64, 0);
        b.finish();
        let img = IrInterp::run_kernel(&k);
        // out[i] = 2*i for i in 0..128.
        assert_eq!(img.load(out.base), 0);
        assert_eq!(img.load(out.base + 8 * 100), 200);
    }

    #[test]
    fn carried_accumulator_resets_per_outer_iteration() {
        let mut k = Kernel::new("t");
        let arr = k.array_init(64, |_| 1);
        let out = k.array(64);
        let mut b = k.loop_build_2d(3, 2);
        let acc = b.carried_v();
        let x = b.vload(arr, 0, 1, 64, 0, 0);
        b.vadd_into(acc, acc, x, 64);
        b.vstore(acc, out, 0, 1, 64, 0, 0);
        b.finish();
        let img = IrInterp::run_kernel(&k);
        // Each outer iteration re-zeroes acc, then adds 1 three times.
        assert_eq!(img.load(out.base), 3);
    }

    #[test]
    #[should_panic(expected = "before definition")]
    fn use_before_def_panics() {
        let mut k = Kernel::new("t");
        let arr = k.array(128);
        let mut b = k.loop_build(1);
        // A fresh virtual used without being defined: fabricate via vadd
        // of a load and an undefined carried-less virtual.
        let x = b.vload(arr, 0, 1, 8, 0, 0);
        let undefined = VirtReg::V(9999);
        b.vadd_into(x, undefined, x, 8);
        b.finish();
        let _ = IrInterp::run_kernel(&k);
    }
}
