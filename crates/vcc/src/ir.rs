//! Virtual-register kernel IR.
//!
//! Kernels are written against an unlimited supply of virtual registers;
//! the register allocator later maps them onto the 8 architectural
//! registers of each class, inserting spill code exactly the way the
//! Convex compiler had to. This is how the reproduction obtains *real*
//! spill traffic (paper Table 3) instead of faking it.

use std::fmt;
use std::sync::{Arc, OnceLock};

use oov_exec::{BaseImage, MemImage};
use oov_isa::{Opcode, MAX_VL};

/// A virtual register: class plus an unbounded index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VirtReg {
    /// Address-class virtual.
    A(u32),
    /// Scalar-class virtual.
    S(u32),
    /// Vector-class virtual.
    V(u32),
    /// Mask-class virtual.
    M(u32),
}

impl VirtReg {
    /// The architectural class this virtual will be allocated in.
    #[must_use]
    pub fn class(self) -> oov_isa::RegClass {
        match self {
            VirtReg::A(_) => oov_isa::RegClass::A,
            VirtReg::S(_) => oov_isa::RegClass::S,
            VirtReg::V(_) => oov_isa::RegClass::V,
            VirtReg::M(_) => oov_isa::RegClass::Mask,
        }
    }
}

impl fmt::Display for VirtReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VirtReg::A(i) => write!(f, "a{i}"),
            VirtReg::S(i) => write!(f, "s{i}"),
            VirtReg::V(i) => write!(f, "v{i}"),
            VirtReg::M(i) => write!(f, "m{i}"),
        }
    }
}

/// A handle to a data array placed in the kernel's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayHandle {
    /// Byte address of the first word.
    pub base: u64,
    /// Size in 8-byte words.
    pub words: u64,
}

/// Address expression of a memory access: the concrete byte address is
/// `base + outer_iter * outer_advance + iter * iter_advance`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddrExpr {
    /// Byte address at iteration 0.
    pub base: u64,
    /// Bytes advanced per inner-loop iteration.
    pub iter_advance: i64,
    /// Bytes advanced per outer-loop iteration.
    pub outer_advance: i64,
    /// Stride between elements, in bytes.
    pub stride_bytes: i64,
    /// For indexed accesses: the width in bytes of the region the indices
    /// may touch (range = `[addr, addr + span]`).
    pub indexed_span: Option<u64>,
}

impl AddrExpr {
    /// Concrete byte address of element 0 at the given iteration numbers.
    #[must_use]
    pub fn at(&self, outer_iter: u64, iter: u64) -> u64 {
        self.base
            .wrapping_add_signed(self.outer_advance.wrapping_mul(outer_iter as i64))
            .wrapping_add_signed(self.iter_advance.wrapping_mul(iter as i64))
    }
}

/// One IR instruction over virtual registers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KInst {
    /// Opcode (same repertoire as the traced ISA).
    pub op: Opcode,
    /// Destination virtual, if any.
    pub dst: Option<VirtReg>,
    /// Source virtuals.
    pub srcs: Vec<VirtReg>,
    /// Immediate operand.
    pub imm: i64,
    /// Vector length (1 for scalar ops).
    pub vl: u16,
    /// Memory address expression for loads/stores.
    pub addr: Option<AddrExpr>,
}

impl KInst {
    /// `true` if this instruction reads or writes memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }
}

/// A loop segment: `body` executed `trips` times, optionally repeated
/// `outer_trips` times with addresses advanced by each access's
/// `outer_advance` (a strip-mined 2-D sweep).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopSeg {
    /// Inner trip count.
    pub trips: u32,
    /// Outer trip count (1 = plain loop).
    pub outer_trips: u32,
    /// Straight-line body.
    pub body: Vec<KInst>,
    /// Virtual registers carried across the backedge (live-in and
    /// live-out of every iteration): accumulators, reused constants.
    pub carried: Vec<VirtReg>,
}

/// A kernel: named program, address space, and a list of loop segments
/// executed in order. Virtual registers do not flow between segments.
#[derive(Debug, Clone, Default)]
pub struct Kernel {
    name: String,
    segments: Vec<LoopSeg>,
    next_virt: u32,
    next_addr: u64,
    /// Initial memory contents `(byte address, value)` the golden executor
    /// should install before running.
    pub mem_init: Vec<(u64, u64)>,
    /// The seeded base image, built lazily from `mem_init` and shared
    /// by every interpreter fork (see [`Kernel::base_image`]).
    base: OnceLock<Arc<BaseImage>>,
}

/// Lowest address used for data arrays.
pub const ARRAY_SPACE_BASE: u64 = 0x0001_0000;
/// Spill slots are placed at and above this address; the data space must
/// stay below so correctness checks can ignore spill memory.
pub const SPILL_SPACE_BASE: u64 = 0x4000_0000;

impl Kernel {
    /// Creates an empty kernel.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Kernel {
            name: name.into(),
            segments: Vec::new(),
            next_virt: 0,
            next_addr: ARRAY_SPACE_BASE,
            mem_init: Vec::new(),
            base: OnceLock::new(),
        }
    }

    /// The kernel's frozen initial-memory image, seeded from
    /// `mem_init` exactly once and forked copy-on-write by every
    /// consumer (the IR interpreter, golden checks). Call only after
    /// the kernel is fully built — later `array_init` additions are
    /// not reflected in an already-frozen base.
    #[must_use]
    pub fn base_image(&self) -> &Arc<BaseImage> {
        self.base.get_or_init(|| {
            let mut m = MemImage::new();
            m.seed(&self.mem_init);
            Arc::new(m.freeze())
        })
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The loop segments in execution order.
    #[must_use]
    pub fn segments(&self) -> &[LoopSeg] {
        &self.segments
    }

    /// Allocates a data array of `words` 8-byte words, 64-byte aligned.
    ///
    /// # Panics
    ///
    /// Panics if the array space would collide with the spill space.
    pub fn array(&mut self, words: u64) -> ArrayHandle {
        let base = self.next_addr;
        self.next_addr = (self.next_addr + words * 8 + 63) & !63;
        assert!(
            self.next_addr < SPILL_SPACE_BASE,
            "kernel data space exhausted"
        );
        ArrayHandle { base, words }
    }

    /// Allocates a data array and fills it with `f(i)` for each word `i`.
    pub fn array_init(&mut self, words: u64, f: impl Fn(u64) -> u64) -> ArrayHandle {
        let h = self.array(words);
        for i in 0..words {
            self.mem_init.push((h.base + i * 8, f(i)));
        }
        h
    }

    fn fresh(&mut self) -> u32 {
        let n = self.next_virt;
        self.next_virt += 1;
        n
    }

    /// Opens a loop builder for a segment run `trips` times.
    pub fn loop_build(&mut self, trips: u32) -> LoopBuilder<'_> {
        self.loop_build_2d(trips, 1)
    }

    /// Opens a loop builder for a 2-D sweep: inner `trips`, outer
    /// `outer_trips` (addresses advance by each access's outer advance).
    pub fn loop_build_2d(&mut self, trips: u32, outer_trips: u32) -> LoopBuilder<'_> {
        assert!(trips >= 1 && outer_trips >= 1, "trip counts must be >= 1");
        LoopBuilder {
            kernel: self,
            seg: LoopSeg {
                trips,
                outer_trips,
                body: Vec::new(),
                carried: Vec::new(),
            },
        }
    }
}

/// Builder for one loop segment. Finish with [`LoopBuilder::finish`].
///
/// Register-producing methods return fresh virtual registers (SSA-like
/// within the body); `*_into` variants overwrite an existing virtual,
/// which is how loop-carried accumulators are expressed.
#[derive(Debug)]
pub struct LoopBuilder<'k> {
    kernel: &'k mut Kernel,
    seg: LoopSeg,
}

impl LoopBuilder<'_> {
    fn push(&mut self, inst: KInst) {
        if let Some(a) = &inst.addr {
            if inst.op.is_vector() && a.indexed_span.is_none() {
                // Sanity: strided vector accesses must stay inside the
                // data space for the configured trip counts.
                debug_assert!(a.base >= ARRAY_SPACE_BASE);
            }
        }
        self.seg.body.push(inst);
    }

    /// Declares a fresh vector virtual and marks it loop-carried.
    pub fn carried_v(&mut self) -> VirtReg {
        let v = VirtReg::V(self.kernel.fresh());
        self.seg.carried.push(v);
        v
    }

    /// Declares a fresh scalar virtual and marks it loop-carried.
    pub fn carried_s(&mut self) -> VirtReg {
        let v = VirtReg::S(self.kernel.fresh());
        self.seg.carried.push(v);
        v
    }

    /// Declares a fresh address virtual and marks it loop-carried.
    pub fn carried_a(&mut self) -> VirtReg {
        let v = VirtReg::A(self.kernel.fresh());
        self.seg.carried.push(v);
        v
    }

    /// Strided vector load of `vl` elements from `arr` starting at word
    /// `offset_words`, element stride `stride_elems`, advancing
    /// `advance_words` words per iteration (and `outer_advance_words` per
    /// outer iteration).
    pub fn vload(
        &mut self,
        arr: ArrayHandle,
        offset_words: u64,
        stride_elems: i64,
        vl: u16,
        advance_words: i64,
        outer_advance_words: i64,
    ) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.vload_into(
            dst,
            arr,
            offset_words,
            stride_elems,
            vl,
            advance_words,
            outer_advance_words,
        );
        dst
    }

    /// As [`LoopBuilder::vload`], into an existing virtual.
    #[allow(clippy::too_many_arguments)]
    pub fn vload_into(
        &mut self,
        dst: VirtReg,
        arr: ArrayHandle,
        offset_words: u64,
        stride_elems: i64,
        vl: u16,
        advance_words: i64,
        outer_advance_words: i64,
    ) {
        assert!((1..=MAX_VL).contains(&vl));
        self.push(KInst {
            op: Opcode::VLoad,
            dst: Some(dst),
            srcs: vec![],
            imm: 0,
            vl,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: advance_words * 8,
                outer_advance: outer_advance_words * 8,
                stride_bytes: stride_elems * 8,
                indexed_span: None,
            }),
        });
    }

    /// Strided vector store of `vl` elements.
    #[allow(clippy::too_many_arguments)]
    pub fn vstore(
        &mut self,
        data: VirtReg,
        arr: ArrayHandle,
        offset_words: u64,
        stride_elems: i64,
        vl: u16,
        advance_words: i64,
        outer_advance_words: i64,
    ) {
        assert!((1..=MAX_VL).contains(&vl));
        self.push(KInst {
            op: Opcode::VStore,
            dst: None,
            srcs: vec![data],
            imm: 0,
            vl,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: advance_words * 8,
                outer_advance: outer_advance_words * 8,
                stride_bytes: stride_elems * 8,
                indexed_span: None,
            }),
        });
    }

    /// Gather: load `vl` elements at `arr[offset] + index[i]` byte
    /// offsets, where indices may reach `span_words * 8` bytes.
    pub fn vgather(
        &mut self,
        index: VirtReg,
        arr: ArrayHandle,
        offset_words: u64,
        span_words: u64,
        vl: u16,
    ) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VGather,
            dst: Some(dst),
            srcs: vec![index],
            imm: 0,
            vl,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: 0,
                outer_advance: 0,
                stride_bytes: 0,
                indexed_span: Some(span_words * 8),
            }),
        });
        dst
    }

    /// Scatter: store `data[i]` to `arr[offset] + index[i]` byte offsets.
    pub fn vscatter(
        &mut self,
        data: VirtReg,
        index: VirtReg,
        arr: ArrayHandle,
        offset_words: u64,
        span_words: u64,
        vl: u16,
    ) {
        self.push(KInst {
            op: Opcode::VScatter,
            dst: None,
            srcs: vec![data, index],
            imm: 0,
            vl,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: 0,
                outer_advance: 0,
                stride_bytes: 0,
                indexed_span: Some(span_words * 8),
            }),
        });
    }

    /// Scalar load from `arr[offset]`, advancing per iteration.
    pub fn sload(&mut self, arr: ArrayHandle, offset_words: u64, advance_words: i64) -> VirtReg {
        let dst = VirtReg::S(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::SLoad,
            dst: Some(dst),
            srcs: vec![],
            imm: 0,
            vl: 1,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: advance_words * 8,
                outer_advance: 0,
                stride_bytes: 0,
                indexed_span: None,
            }),
        });
        dst
    }

    /// Scalar store to `arr[offset]`, advancing per iteration.
    pub fn sstore(
        &mut self,
        data: VirtReg,
        arr: ArrayHandle,
        offset_words: u64,
        advance_words: i64,
    ) {
        self.push(KInst {
            op: Opcode::SStore,
            dst: None,
            srcs: vec![data],
            imm: 0,
            vl: 1,
            addr: Some(AddrExpr {
                base: arr.base + offset_words * 8,
                iter_advance: advance_words * 8,
                outer_advance: 0,
                stride_bytes: 0,
                indexed_span: None,
            }),
        });
    }

    fn vec_binop(&mut self, op: Opcode, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.vec_binop_into(op, dst, a, b, vl);
        dst
    }

    fn vec_binop_into(&mut self, op: Opcode, dst: VirtReg, a: VirtReg, b: VirtReg, vl: u16) {
        assert!((1..=MAX_VL).contains(&vl));
        self.push(KInst {
            op,
            dst: Some(dst),
            srcs: vec![a, b],
            imm: 0,
            vl,
            addr: None,
        });
    }

    /// Vector add (FU1/FU2).
    pub fn vadd(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        self.vec_binop(Opcode::VAdd, a, b, vl)
    }

    /// Vector add into an existing virtual (accumulation).
    pub fn vadd_into(&mut self, dst: VirtReg, a: VirtReg, b: VirtReg, vl: u16) {
        self.vec_binop_into(Opcode::VAdd, dst, a, b, vl);
    }

    /// Vector multiply (FU2 only).
    pub fn vmul(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        self.vec_binop(Opcode::VMul, a, b, vl)
    }

    /// Vector multiply into an existing virtual.
    pub fn vmul_into(&mut self, dst: VirtReg, a: VirtReg, b: VirtReg, vl: u16) {
        self.vec_binop_into(Opcode::VMul, dst, a, b, vl);
    }

    /// Vector divide (FU2 only).
    pub fn vdiv(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        self.vec_binop(Opcode::VDiv, a, b, vl)
    }

    /// Vector square root (FU2 only).
    pub fn vsqrt(&mut self, a: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VSqrt,
            dst: Some(dst),
            srcs: vec![a],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Vector logical op (FU1/FU2).
    pub fn vlogic(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        self.vec_binop(Opcode::VLogic, a, b, vl)
    }

    /// Vector shift (FU1/FU2).
    pub fn vshift(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        self.vec_binop(Opcode::VShift, a, b, vl)
    }

    /// Vector compare producing a mask.
    pub fn vcmp(&mut self, a: VirtReg, b: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::M(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VCmp,
            dst: Some(dst),
            srcs: vec![a, b],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Vector merge under mask.
    pub fn vmerge(&mut self, a: VirtReg, b: VirtReg, mask: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VMerge,
            dst: Some(dst),
            srcs: vec![a, b, mask],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Sum-reduction of a vector into a fresh scalar.
    pub fn vreduce(&mut self, a: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::S(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VReduce,
            dst: Some(dst),
            srcs: vec![a],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Sum-reduction into an existing scalar virtual.
    pub fn vreduce_into(&mut self, dst: VirtReg, a: VirtReg, vl: u16) {
        self.push(KInst {
            op: Opcode::VReduce,
            dst: Some(dst),
            srcs: vec![a],
            imm: 0,
            vl,
            addr: None,
        });
    }

    /// Loads a constant into a fresh scalar virtual.
    pub fn slui(&mut self, imm: i64) -> VirtReg {
        let dst = VirtReg::S(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::SLui,
            dst: Some(dst),
            srcs: vec![],
            imm,
            vl: 1,
            addr: None,
        });
        dst
    }

    /// Scalar add of two scalar virtuals.
    pub fn sadd(&mut self, a: VirtReg, b: VirtReg) -> VirtReg {
        let dst = VirtReg::S(self.kernel.fresh());
        self.sadd_into(dst, a, b);
        dst
    }

    /// Scalar add into an existing virtual.
    pub fn sadd_into(&mut self, dst: VirtReg, a: VirtReg, b: VirtReg) {
        self.push(KInst {
            op: Opcode::SAdd,
            dst: Some(dst),
            srcs: vec![a, b],
            imm: 0,
            vl: 1,
            addr: None,
        });
    }

    /// Scalar multiply.
    pub fn smul(&mut self, a: VirtReg, b: VirtReg) -> VirtReg {
        let dst = VirtReg::S(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::SMul,
            dst: Some(dst),
            srcs: vec![a, b],
            imm: 0,
            vl: 1,
            addr: None,
        });
        dst
    }

    /// Vector-scalar multiply: `dst[i] = a[i] * s` (scalar operand).
    pub fn vmul_s(&mut self, a: VirtReg, s: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VMul,
            dst: Some(dst),
            srcs: vec![a, s],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Vector-scalar add: `dst[i] = a[i] + s`.
    pub fn vadd_s(&mut self, a: VirtReg, s: VirtReg, vl: u16) -> VirtReg {
        let dst = VirtReg::V(self.kernel.fresh());
        self.push(KInst {
            op: Opcode::VAdd,
            dst: Some(dst),
            srcs: vec![a, s],
            imm: 0,
            vl,
            addr: None,
        });
        dst
    }

    /// Seals the loop and appends it to the kernel.
    pub fn finish(self) {
        let LoopBuilder { kernel, seg } = self;
        assert!(!seg.body.is_empty(), "empty loop body");
        kernel.segments.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrays_do_not_overlap() {
        let mut k = Kernel::new("t");
        let a = k.array(100);
        let b = k.array(100);
        assert!(a.base + a.words * 8 <= b.base);
        assert!(a.base >= ARRAY_SPACE_BASE);
    }

    #[test]
    fn array_init_records_contents() {
        let mut k = Kernel::new("t");
        let a = k.array_init(4, |i| i * 2);
        assert_eq!(k.mem_init.len(), 4);
        assert_eq!(k.mem_init[3], (a.base + 24, 6));
    }

    #[test]
    fn addr_expr_advances() {
        let e = AddrExpr {
            base: 0x1000,
            iter_advance: 64,
            outer_advance: 1024,
            stride_bytes: 8,
            indexed_span: None,
        };
        assert_eq!(e.at(0, 0), 0x1000);
        assert_eq!(e.at(0, 3), 0x10c0);
        assert_eq!(e.at(2, 1), 0x1000 + 2048 + 64);
    }

    #[test]
    fn builder_creates_fresh_virtuals() {
        let mut k = Kernel::new("t");
        let arr = k.array(1024);
        let mut b = k.loop_build(4);
        let x = b.vload(arr, 0, 1, 64, 64, 0);
        let y = b.vload(arr, 512, 1, 64, 64, 0);
        assert_ne!(x, y);
        let z = b.vadd(x, y, 64);
        b.vstore(z, arr, 0, 1, 64, 64, 0);
        b.finish();
        assert_eq!(k.segments().len(), 1);
        assert_eq!(k.segments()[0].body.len(), 4);
        assert_eq!(k.segments()[0].trips, 4);
    }

    #[test]
    fn carried_registers_recorded() {
        let mut k = Kernel::new("t");
        let arr = k.array(1024);
        let mut b = k.loop_build(4);
        let acc = b.carried_v();
        let x = b.vload(arr, 0, 1, 64, 64, 0);
        b.vadd_into(acc, acc, x, 64);
        b.finish();
        assert_eq!(k.segments()[0].carried, vec![acc]);
    }

    #[test]
    #[should_panic(expected = "empty loop body")]
    fn empty_loop_rejected() {
        let mut k = Kernel::new("t");
        k.loop_build(1).finish();
    }

    #[test]
    fn virt_display_and_class() {
        assert_eq!(VirtReg::V(3).to_string(), "v3");
        assert_eq!(VirtReg::M(0).class(), oov_isa::RegClass::Mask);
    }
}
