//! Dependence-aware list scheduling of loop bodies.
//!
//! The paper's reference machine relies on the Convex compiler to schedule
//! vector instructions ("The compiler is responsible for scheduling vector
//! instructions ... so that no port conflicts arise", §2.1). This module
//! plays that role: it reorders each straight-line loop body by a
//! latency-weighted critical-path priority while preserving all register
//! and memory dependences.

use std::collections::HashMap;

use oov_isa::LatencyModel;

use crate::ir::{KInst, LoopSeg, VirtReg};

/// Inclusive byte range an instruction may touch across *all* iterations
/// of its segment (conservative; used for memory-dependence edges).
#[must_use]
pub(crate) fn footprint(inst: &KInst, seg: &LoopSeg) -> Option<(u64, u64)> {
    let a = inst.addr.as_ref()?;
    let corners = [
        a.at(0, 0),
        a.at(0, u64::from(seg.trips.saturating_sub(1))),
        a.at(u64::from(seg.outer_trips.saturating_sub(1)), 0),
        a.at(
            u64::from(seg.outer_trips.saturating_sub(1)),
            u64::from(seg.trips.saturating_sub(1)),
        ),
    ];
    let base_lo = *corners.iter().min().unwrap();
    let base_hi = *corners.iter().max().unwrap();
    let (lo, hi) = if let Some(span) = a.indexed_span {
        (base_lo, base_hi + span)
    } else {
        let extent = a.stride_bytes * (i64::from(inst.vl) - 1);
        if extent >= 0 {
            (base_lo, base_hi.wrapping_add_signed(extent))
        } else {
            (base_lo.wrapping_add_signed(extent), base_hi)
        }
    };
    Some((lo, hi + 7))
}

fn ranges_overlap(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Builds the dependence edges of a body: `edges[i]` lists the
/// instructions that must precede instruction `i`.
#[must_use]
pub(crate) fn dependence_preds(seg: &LoopSeg) -> Vec<Vec<usize>> {
    let body = &seg.body;
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); body.len()];
    let mut last_def: HashMap<VirtReg, usize> = HashMap::new();
    let mut last_uses: HashMap<VirtReg, Vec<usize>> = HashMap::new();
    let footprints: Vec<Option<(u64, u64)>> = body.iter().map(|i| footprint(i, seg)).collect();
    let mut mem_ops: Vec<usize> = Vec::new();

    for (i, inst) in body.iter().enumerate() {
        // RAW: each source depends on its last definition.
        for &s in &inst.srcs {
            if let Some(&d) = last_def.get(&s) {
                preds[i].push(d);
            }
            last_uses.entry(s).or_default().push(i);
        }
        if let Some(d) = inst.dst {
            // WAW with previous definition.
            if let Some(&p) = last_def.get(&d) {
                preds[i].push(p);
            }
            // WAR with previous uses.
            if let Some(users) = last_uses.get(&d) {
                preds[i].extend(users.iter().copied().filter(|&u| u != i));
            }
            last_def.insert(d, i);
            last_uses.insert(d, Vec::new());
        }
        // Memory dependences: a store orders against any overlapping
        // earlier access; a load orders against overlapping earlier stores.
        if inst.is_mem() {
            let fp = footprints[i].expect("memory op without address");
            for &j in &mem_ops {
                let other = &body[j];
                let both_loads = inst.op.is_load() && other.op.is_load();
                if both_loads {
                    continue;
                }
                if let Some(ofp) = footprints[j] {
                    if ranges_overlap(fp, ofp) {
                        preds[i].push(j);
                    }
                }
            }
            mem_ops.push(i);
        }
    }
    for p in &mut preds {
        p.sort_unstable();
        p.dedup();
    }
    preds
}

/// Reorders `seg.body` with greedy list scheduling: among ready
/// instructions, pick the one with the longest latency-weighted path to
/// the end of the body. Returns the new order as indices into the
/// original body.
#[must_use]
pub(crate) fn schedule_order(seg: &LoopSeg, lat: &LatencyModel) -> Vec<usize> {
    let body = &seg.body;
    let preds = dependence_preds(seg);
    let n = body.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, ps) in preds.iter().enumerate() {
        for &p in ps {
            succs[p].push(i);
        }
    }
    // Critical-path priority, computed backwards.
    let mut prio: Vec<u64> = vec![0; n];
    for i in (0..n).rev() {
        let own = u64::from(lat.first_result(body[i].op)) + u64::from(body[i].vl);
        let best_succ = succs[i].iter().map(|&s| prio[s]).max().unwrap_or(0);
        prio[i] = own + best_succ;
    }
    let mut remaining_preds: Vec<usize> = preds.iter().map(Vec::len).collect();
    let mut ready: Vec<usize> = (0..n).filter(|&i| remaining_preds[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(pos) = ready
        .iter()
        .enumerate()
        // Highest priority; original order breaks ties for determinism.
        .max_by_key(|(_, &i)| (prio[i], std::cmp::Reverse(i)))
        .map(|(pos, _)| pos)
    {
        let i = ready.swap_remove(pos);
        order.push(i);
        for &s in &succs[i] {
            remaining_preds[s] -= 1;
            if remaining_preds[s] == 0 {
                ready.push(s);
            }
        }
    }
    assert_eq!(order.len(), n, "dependence graph has a cycle");
    order
}

/// Schedules a segment in place.
pub fn schedule_segment(seg: &mut LoopSeg, lat: &LatencyModel) {
    let order = schedule_order(seg, lat);
    let mut new_body = Vec::with_capacity(seg.body.len());
    for &i in &order {
        new_body.push(seg.body[i].clone());
    }
    seg.body = new_body;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Kernel;

    fn sample_seg() -> (Kernel, usize) {
        let mut k = Kernel::new("t");
        let arr = k.array(4096);
        let mut b = k.loop_build(4);
        let x = b.vload(arr, 0, 1, 64, 64, 0); // 0
        let y = b.vload(arr, 1024, 1, 64, 64, 0); // 1
        let z = b.vmul(x, y, 64); // 2: needs 0,1
        let w = b.vadd(z, x, 64); // 3: needs 2,0
        b.vstore(w, arr, 2048, 1, 64, 64, 0); // 4: needs 3
        b.finish();
        (k, 5)
    }

    #[test]
    fn raw_dependences_found() {
        let (k, _) = sample_seg();
        let preds = dependence_preds(&k.segments()[0]);
        assert!(preds[2].contains(&0) && preds[2].contains(&1));
        assert!(preds[3].contains(&2) && preds[3].contains(&0));
        assert!(preds[4].contains(&3));
    }

    #[test]
    fn loads_do_not_order_against_loads() {
        let (k, _) = sample_seg();
        let preds = dependence_preds(&k.segments()[0]);
        assert!(preds[1].is_empty(), "two loads are independent");
    }

    #[test]
    fn store_orders_against_overlapping_load() {
        let mut k = Kernel::new("t");
        let arr = k.array(4096);
        let mut b = k.loop_build(2);
        let x = b.vload(arr, 0, 1, 64, 64, 0); // 0
        b.vstore(x, arr, 0, 1, 64, 64, 0); // 1: same region
        b.finish();
        let preds = dependence_preds(&k.segments()[0]);
        assert!(preds[1].contains(&0));
    }

    #[test]
    fn disjoint_store_and_load_unordered() {
        let mut k = Kernel::new("t");
        let a1 = k.array(1024);
        let a2 = k.array(1024);
        let mut b = k.loop_build(2);
        let x = b.vload(a1, 0, 1, 64, 64, 0); // 0
        b.vstore(x, a2, 0, 1, 64, 64, 0); // 1: disjoint array
        let _y = b.vload(a1, 512, 1, 64, 0, 0); // 2: disjoint from store
        b.finish();
        let preds = dependence_preds(&k.segments()[0]);
        assert!(!preds[2].contains(&1));
    }

    #[test]
    fn schedule_is_a_valid_topological_order() {
        let (k, n) = sample_seg();
        let seg = &k.segments()[0];
        let order = schedule_order(seg, &LatencyModel::reference());
        assert_eq!(order.len(), n);
        let pos: HashMap<usize, usize> = order.iter().enumerate().map(|(p, &i)| (i, p)).collect();
        for (i, ps) in dependence_preds(seg).iter().enumerate() {
            for &p in ps {
                assert!(pos[&p] < pos[&i], "dependence {p}->{i} violated");
            }
        }
    }

    #[test]
    fn waw_and_war_respected_for_accumulators() {
        let mut k = Kernel::new("t");
        let arr = k.array(4096);
        let mut b = k.loop_build(4);
        let acc = b.carried_v();
        let x = b.vload(arr, 0, 1, 64, 64, 0); // 0
        b.vadd_into(acc, acc, x, 64); // 1 (reads+writes acc)
        b.vadd_into(acc, acc, x, 64); // 2 (must follow 1: RAW+WAW+WAR)
        b.finish();
        let preds = dependence_preds(&k.segments()[0]);
        assert!(preds[2].contains(&1));
    }

    #[test]
    fn footprint_covers_all_iterations() {
        let mut k = Kernel::new("t");
        let arr = k.array(8192);
        let mut b = k.loop_build(10);
        b.vload(arr, 0, 1, 64, 64, 0);
        b.finish();
        let seg = &k.segments()[0];
        let fp = footprint(&seg.body[0], seg).unwrap();
        // 10 iterations advancing 64 words: last element at word 9*64+63.
        assert_eq!(fp.0, arr.base);
        assert_eq!(fp.1, arr.base + (9 * 64 + 63) * 8 + 7);
    }
}
