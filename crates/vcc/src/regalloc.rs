//! Local register allocation with spill generation.
//!
//! Maps the unlimited virtual registers of a scheduled loop body onto the
//! 8 architectural registers of each class, Belady-style (evict the value
//! with the farthest next use). Evictions produce *spill stores*, reuses
//! of evicted values produce *spill loads* — the real memory traffic the
//! paper's Table 3 measures and §6's dynamic load elimination attacks.
//!
//! Two refinements mirror production compilers:
//!
//! * values that are memory-resident (just loaded, or already spilled)
//!   are evicted without a store;
//! * a value defined by a plain load can be *rematerialised* by reloading
//!   from its original address, provided no potentially-overlapping store
//!   has been emitted since — this creates the "repeated loads from the
//!   same memory location" the paper attributes to limited registers.

use std::collections::HashMap;

use oov_isa::{ArchReg, Opcode, RegClass};

use crate::ir::{AddrExpr, KInst, LoopSeg, VirtReg, SPILL_SPACE_BASE};
use crate::sched::footprint;

/// A template instruction: architectural registers, but addresses still
/// parameterised by iteration number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TInst {
    /// Opcode.
    pub op: Opcode,
    /// Destination architectural register.
    pub dst: Option<ArchReg>,
    /// Source architectural registers.
    pub srcs: Vec<ArchReg>,
    /// Immediate.
    pub imm: i64,
    /// Vector length.
    pub vl: u16,
    /// Address expression (memory ops only).
    pub addr: Option<AddrExpr>,
    /// `true` for allocator-inserted spill traffic.
    pub is_spill: bool,
}

/// Counters describing the spill code inserted for one segment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpillSummary {
    /// Vector spill stores inserted (instructions).
    pub vstores: u64,
    /// Vector spill reloads inserted (slot reloads + rematerialised loads).
    pub vloads: u64,
    /// Scalar spill stores inserted.
    pub sstores: u64,
    /// Scalar spill reloads inserted.
    pub sloads: u64,
    /// Reloads that rematerialised from the original address rather than
    /// a spill slot.
    pub remat_loads: u64,
}

impl SpillSummary {
    /// Merges another summary into this one.
    pub fn merge(&mut self, other: &SpillSummary) {
        self.vstores += other.vstores;
        self.vloads += other.vloads;
        self.sstores += other.sstores;
        self.sloads += other.sloads;
        self.remat_loads += other.remat_loads;
    }
}

/// Architectural registers available to the allocator per class. `A6`/`A7`
/// are reserved for the loop counter and limit emitted by the lowerer.
#[must_use]
pub(crate) fn pool_size(class: RegClass) -> u8 {
    match class {
        RegClass::A => 6,
        _ => 8,
    }
}

#[derive(Debug, Clone)]
struct VirtState {
    reg: Option<u8>,
    pinned: bool,
    /// Remaining source-use positions, ascending.
    uses: Vec<usize>,
    /// Cursor into `uses`.
    next_use_ix: usize,
    slot: Option<u64>,
    /// Slot (or original load address) holds the current value.
    slot_current: bool,
    live_vl: u16,
    /// `(addr, vl, op)` of the defining plain load, if rematerialisable.
    def_load: Option<(AddrExpr, u16, Opcode)>,
}

impl VirtState {
    fn next_use(&self) -> Option<usize> {
        self.uses.get(self.next_use_ix).copied()
    }
}

/// Allocates spill slots within the dedicated spill address space.
#[derive(Debug)]
pub(crate) struct SlotAllocator {
    next: u64,
}

impl SlotAllocator {
    pub(crate) fn new() -> Self {
        SlotAllocator {
            next: SPILL_SPACE_BASE,
        }
    }

    fn alloc(&mut self, class: RegClass) -> u64 {
        let bytes = match class {
            RegClass::V => 128 * 8,
            _ => 8,
        };
        let s = self.next;
        self.next += bytes;
        s
    }
}

struct Allocator<'a> {
    seg: &'a LoopSeg,
    virts: HashMap<VirtReg, VirtState>,
    free: HashMap<RegClass, Vec<u8>>,
    occupant: HashMap<(RegClass, u8), VirtReg>,
    out: Vec<TInst>,
    slots: &'a mut SlotAllocator,
    summary: SpillSummary,
    /// Footprints of stores emitted so far into the data space.
    store_log: Vec<(u64, u64)>,
}

/// Result of allocating one segment.
pub(crate) struct AllocatedSegment {
    pub body: Vec<TInst>,
    pub summary: SpillSummary,
    /// Carried virtuals and their pinned architectural registers, used by
    /// the lowerer to zero-initialise them before the loop.
    pub pinned: Vec<ArchReg>,
}

/// Runs the allocator over a scheduled segment body.
///
/// # Panics
///
/// Panics if the carried set exceeds the register pool of any class, if a
/// mask value would need spilling (the ISA has no mask load/store), or if
/// the body uses a virtual before defining it.
pub(crate) fn allocate_segment(seg: &LoopSeg, slots: &mut SlotAllocator) -> AllocatedSegment {
    let mut a = Allocator::new(seg, slots);
    a.pin_carried();
    let pinned = seg
        .carried
        .iter()
        .map(|v| arch(v.class(), a.virts[v].reg.expect("pinned without reg")))
        .collect();
    a.run();
    AllocatedSegment {
        body: a.out,
        summary: a.summary,
        pinned,
    }
}

fn arch(class: RegClass, idx: u8) -> ArchReg {
    ArchReg::new(class, idx)
}

impl<'a> Allocator<'a> {
    fn new(seg: &'a LoopSeg, slots: &'a mut SlotAllocator) -> Self {
        let mut virts: HashMap<VirtReg, VirtState> = HashMap::new();
        for (p, inst) in seg.body.iter().enumerate() {
            for &s in &inst.srcs {
                virts
                    .entry(s)
                    .or_insert_with(|| VirtState {
                        reg: None,
                        pinned: false,
                        uses: Vec::new(),
                        next_use_ix: 0,
                        slot: None,
                        slot_current: false,
                        live_vl: 1,
                        def_load: None,
                    })
                    .uses
                    .push(p);
            }
            if let Some(d) = inst.dst {
                virts.entry(d).or_insert_with(|| VirtState {
                    reg: None,
                    pinned: false,
                    uses: Vec::new(),
                    next_use_ix: 0,
                    slot: None,
                    slot_current: false,
                    live_vl: 1,
                    def_load: None,
                });
            }
        }
        let mut free: HashMap<RegClass, Vec<u8>> = HashMap::new();
        for class in RegClass::ALL {
            // Low indices handed out last (pop from the back).
            free.insert(class, (0..pool_size(class)).rev().collect());
        }
        Allocator {
            seg,
            virts,
            free,
            occupant: HashMap::new(),
            out: Vec::new(),
            slots,
            summary: SpillSummary::default(),
            store_log: Vec::new(),
        }
    }

    fn pin_carried(&mut self) {
        for &v in &self.seg.carried {
            let class = v.class();
            let idx = self
                .free
                .get_mut(&class)
                .unwrap()
                .pop()
                .unwrap_or_else(|| panic!("too many carried {class} registers"));
            let st = self.virts.get_mut(&v).expect("carried virt never used");
            st.reg = Some(idx);
            st.pinned = true;
            // Carried vectors hold full-length values across iterations.
            if class == RegClass::V {
                st.live_vl = 128;
            }
            self.occupant.insert((class, idx), v);
        }
    }

    fn reg_of(&self, v: VirtReg) -> Option<u8> {
        self.virts.get(&v).and_then(|s| s.reg)
    }

    /// Picks the eviction victim in `class`: resident, not pinned, not in
    /// `locked`, with the farthest next use (no next use = farthest).
    fn pick_victim(&self, class: RegClass, locked: &[u8]) -> VirtReg {
        let mut best: Option<(VirtReg, usize)> = None;
        for idx in 0..pool_size(class) {
            if locked.contains(&idx) {
                continue;
            }
            let Some(&v) = self.occupant.get(&(class, idx)) else {
                continue;
            };
            let st = &self.virts[&v];
            if st.pinned {
                continue;
            }
            let next = st.next_use().unwrap_or(usize::MAX);
            if best.map(|(_, n)| next > n).unwrap_or(true) {
                best = Some((v, next));
            }
        }
        best.map(|(v, _)| v)
            .unwrap_or_else(|| panic!("register pressure unsatisfiable in class {class}"))
    }

    /// Frees a register in `class`, spilling the victim if its value is
    /// still needed and not recoverable from memory.
    fn make_room(&mut self, class: RegClass, locked: &[u8]) -> u8 {
        if let Some(idx) = self.free.get_mut(&class).unwrap().pop() {
            return idx;
        }
        let victim = self.pick_victim(class, locked);
        let st = self.virts.get_mut(&victim).expect("victim untracked");
        let idx = st.reg.take().expect("victim not resident");
        let needs_value = st.next_use().is_some();
        let recoverable = st.slot_current || st.def_load.is_some();
        if needs_value && !recoverable {
            assert!(
                class != RegClass::Mask,
                "mask register pressure too high: masks cannot be spilled"
            );
            let slot = *st.slot.get_or_insert_with(|| self.slots.alloc(class));
            let vl = st.live_vl;
            st.slot_current = true;
            let (op, addr) = spill_slot_access(class, slot, vl, /* store = */ true);
            self.out.push(TInst {
                op,
                dst: None,
                srcs: vec![arch(class, idx)],
                imm: 0,
                vl,
                addr: Some(addr),
                is_spill: true,
            });
            match class {
                RegClass::V => self.summary.vstores += 1,
                _ => self.summary.sstores += 1,
            }
        }
        self.occupant.remove(&(class, idx));
        idx
    }

    /// Ensures `v` is resident, inserting a spill reload if needed.
    /// Returns its register index and appends it to `locked`.
    fn ensure_resident(&mut self, v: VirtReg, locked: &mut Vec<u8>) -> u8 {
        if let Some(idx) = self.reg_of(v) {
            if !locked.contains(&idx) {
                locked.push(idx);
            }
            return idx;
        }
        let class = v.class();
        let idx = self.make_room(class, locked);
        let st = self.virts.get_mut(&v).expect("virt untracked");
        let (op, addr, vl, remat) = if st.slot_current {
            let slot = st.slot.expect("slot_current without slot");
            let (op, addr) = spill_slot_access(class, slot, st.live_vl, false);
            (op, addr, st.live_vl, false)
        } else if let Some((addr, vl, defop)) = st.def_load {
            (defop, addr, vl, true)
        } else {
            panic!("use of {v} before definition (or unspillable value lost)");
        };
        st.reg = Some(idx);
        self.occupant.insert((class, idx), v);
        self.out.push(TInst {
            op,
            dst: Some(arch(class, idx)),
            srcs: vec![],
            imm: 0,
            vl,
            addr: Some(addr),
            is_spill: true,
        });
        match class {
            RegClass::V => self.summary.vloads += 1,
            _ => self.summary.sloads += 1,
        }
        if remat {
            self.summary.remat_loads += 1;
        }
        locked.push(idx);
        idx
    }

    fn run(&mut self) {
        for p in 0..self.seg.body.len() {
            let inst = self.seg.body[p].clone();
            let mut locked: Vec<u8> = Vec::new();
            // Lock registers of resident operands of this instruction
            // (per class; indices only collide within a class, which is
            // acceptable extra conservatism).
            for &s in &inst.srcs {
                if let Some(idx) = self.reg_of(s) {
                    locked.push(idx);
                }
            }
            if let Some(d) = inst.dst {
                if let Some(idx) = self.reg_of(d) {
                    locked.push(idx);
                }
            }
            let mut src_regs = Vec::with_capacity(inst.srcs.len());
            for &s in &inst.srcs {
                let idx = self.ensure_resident(s, &mut locked);
                src_regs.push(arch(s.class(), idx));
                // Consume this use.
                let st = self.virts.get_mut(&s).unwrap();
                while st.next_use() == Some(p) {
                    st.next_use_ix += 1;
                }
            }
            let dst_reg = inst.dst.map(|d| {
                let class = d.class();
                let idx = match self.reg_of(d) {
                    Some(idx) => idx,
                    None => {
                        let idx = self.make_room(class, &locked);
                        self.occupant.insert((class, idx), d);
                        idx
                    }
                };
                let st = self.virts.get_mut(&d).unwrap();
                st.reg = Some(idx);
                st.slot_current = false;
                st.live_vl = inst.vl;
                st.def_load = if matches!(inst.op, Opcode::VLoad | Opcode::SLoad) {
                    inst.addr.map(|a| (a, inst.vl, inst.op))
                } else {
                    None
                };
                arch(class, idx)
            });
            if inst.op.is_store() {
                if let Some(fp) = footprint(&inst, self.seg) {
                    self.store_log.push(fp);
                    // Any value whose defining load overlaps this store
                    // can no longer be rematerialised from memory.
                    for st in self.virts.values_mut() {
                        if let Some((addr, vl, op)) = st.def_load {
                            let probe = KInst {
                                op,
                                dst: None,
                                srcs: vec![],
                                imm: 0,
                                vl,
                                addr: Some(addr),
                            };
                            if let Some(dfp) = footprint(&probe, self.seg) {
                                if fp.0 <= dfp.1 && dfp.0 <= fp.1 {
                                    st.def_load = None;
                                }
                            }
                        }
                    }
                }
            }
            self.out.push(TInst {
                op: inst.op,
                dst: dst_reg,
                srcs: src_regs,
                imm: inst.imm,
                vl: inst.vl,
                addr: inst.addr,
                is_spill: false,
            });
        }
    }
}

/// Builds the opcode and address expression of a spill-slot access.
fn spill_slot_access(class: RegClass, slot: u64, vl: u16, store: bool) -> (Opcode, AddrExpr) {
    let op = match (class, store) {
        (RegClass::V, true) => Opcode::VStore,
        (RegClass::V, false) => Opcode::VLoad,
        (_, true) => Opcode::SStore,
        (_, false) => Opcode::SLoad,
    };
    let addr = AddrExpr {
        base: slot,
        iter_advance: 0,
        outer_advance: 0,
        stride_bytes: if class == RegClass::V { 8 } else { 0 },
        indexed_span: None,
    };
    let _ = vl;
    (op, addr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Kernel;

    fn alloc(k: &Kernel) -> AllocatedSegment {
        let mut slots = SlotAllocator::new();
        allocate_segment(&k.segments()[0], &mut slots)
    }

    /// 10 simultaneously-live vectors cannot fit in 8 registers.
    fn high_pressure_kernel() -> Kernel {
        let mut k = Kernel::new("pressure");
        let arr = k.array(64 * 1024);
        let mut b = k.loop_build(2);
        let loads: Vec<_> = (0..10)
            .map(|i| b.vload(arr, i * 256, 1, 64, 64, 0))
            .collect();
        // Store in *reverse* order so every load is live across the others.
        let mut acc = loads[9];
        for &x in loads.iter().rev().skip(1) {
            acc = b.vadd(acc, x, 64);
        }
        b.vstore(acc, arr, 32 * 1024, 1, 64, 64, 0);
        b.finish();
        k
    }

    #[test]
    fn low_pressure_needs_no_spills() {
        let mut k = Kernel::new("low");
        let arr = k.array(4096);
        let mut b = k.loop_build(2);
        let x = b.vload(arr, 0, 1, 64, 64, 0);
        let y = b.vload(arr, 1024, 1, 64, 64, 0);
        let z = b.vadd(x, y, 64);
        b.vstore(z, arr, 2048, 1, 64, 64, 0);
        b.finish();
        let a = alloc(&k);
        assert_eq!(a.summary.vloads + a.summary.vstores, 0);
        assert_eq!(a.body.len(), 4);
    }

    #[test]
    fn high_pressure_spills_vectors() {
        let a = alloc(&high_pressure_kernel());
        assert!(a.summary.vloads > 0, "expected vector spill reloads");
        assert!(
            a.body.iter().any(|t| t.is_spill),
            "spill instructions must be marked"
        );
    }

    #[test]
    fn values_loaded_from_memory_rematerialise_without_stores() {
        // All pressure values come straight from loads and nothing stores
        // over them, so evictions need no spill stores at all.
        let a = alloc(&high_pressure_kernel());
        assert_eq!(a.summary.vstores, 0, "loads should rematerialise");
        assert!(a.summary.remat_loads > 0);
    }

    #[test]
    fn computed_values_get_spill_stores() {
        let mut k = Kernel::new("computed");
        let arr = k.array(64 * 1024);
        let mut b = k.loop_build(2);
        // 10 live *computed* vectors (not rematerialisable).
        let base = b.vload(arr, 0, 1, 64, 64, 0);
        let computed: Vec<_> = (0..10)
            .map(|i| {
                let s = b.slui(i);
                b.vmul_s(base, s, 64)
            })
            .collect();
        let mut acc = computed[9];
        for &x in computed.iter().rev().skip(1) {
            acc = b.vadd(acc, x, 64);
        }
        b.vstore(acc, arr, 32 * 1024, 1, 64, 64, 0);
        b.finish();
        let a = alloc(&k);
        assert!(a.summary.vstores > 0, "computed values need spill stores");
        assert!(a.summary.vloads >= a.summary.vstores);
    }

    #[test]
    fn stores_kill_rematerialisation() {
        let mut k = Kernel::new("storekill");
        let arr = k.array(64 * 1024);
        let mut b = k.loop_build(2);
        let loads: Vec<_> = (0..10)
            .map(|i| b.vload(arr, i * 256, 1, 64, 64, 0))
            .collect();
        // A store overlapping every loaded region, while all loads live.
        b.vstore(loads[0], arr, 0, 1, 64, 64, 0);
        let mut acc = loads[9];
        for &x in loads.iter().rev().skip(1) {
            acc = b.vadd(acc, x, 64);
        }
        b.vstore(acc, arr, 48 * 1024, 1, 64, 64, 0);
        b.finish();
        let a = alloc(&k);
        // After the clobbering store, evicted loads must use slots.
        assert!(a.summary.vstores > 0);
    }

    #[test]
    fn carried_registers_are_never_spilled() {
        let mut k = Kernel::new("carried");
        let arr = k.array(64 * 1024);
        let mut b = k.loop_build(4);
        let acc = b.carried_v();
        let loads: Vec<_> = (0..9)
            .map(|i| b.vload(arr, i * 256, 1, 64, 64, 0))
            .collect();
        let mut t = loads[8];
        for &x in loads.iter().rev().skip(1) {
            t = b.vadd(t, x, 64);
        }
        b.vadd_into(acc, acc, t, 64);
        b.finish();
        let a = alloc(&k);
        let acc_reg = a.pinned[0];
        // No spill instruction may touch the pinned register.
        for t in a.body.iter().filter(|t| t.is_spill) {
            assert_ne!(t.dst, Some(acc_reg));
            assert!(!t.srcs.contains(&acc_reg));
        }
    }

    #[test]
    fn output_respects_register_limits() {
        let a = alloc(&high_pressure_kernel());
        for t in &a.body {
            for r in t.dst.iter().chain(t.srcs.iter()) {
                assert!(r.index() < 8);
                if r.class() == RegClass::A {
                    assert!(r.index() < 6, "A6/A7 are reserved for loop control");
                }
            }
        }
    }

    #[test]
    fn spill_slot_stores_live_in_spill_space() {
        // Spill *stores* always target slots; spill loads may instead
        // rematerialise from the original (data-space) address.
        let mut k = Kernel::new("slots");
        let arr = k.array(64 * 1024);
        let mut b = k.loop_build(2);
        let base = b.vload(arr, 0, 1, 64, 64, 0);
        let computed: Vec<_> = (0..10)
            .map(|i| {
                let s = b.slui(i);
                b.vmul_s(base, s, 64)
            })
            .collect();
        let mut acc = computed[9];
        for &x in computed.iter().rev().skip(1) {
            acc = b.vadd(acc, x, 64);
        }
        b.vstore(acc, arr, 32 * 1024, 1, 64, 64, 0);
        b.finish();
        let a = alloc(&k);
        let mut saw_store = false;
        for t in a.body.iter().filter(|t| t.is_spill && t.op.is_store()) {
            saw_store = true;
            let addr = t.addr.expect("spill without address");
            assert!(addr.base >= SPILL_SPACE_BASE);
        }
        assert!(saw_store);
    }

    #[test]
    #[should_panic(expected = "too many carried")]
    fn excess_carried_rejected() {
        let mut k = Kernel::new("toomany");
        let arr = k.array(8192);
        let mut b = k.loop_build(2);
        let carried: Vec<_> = (0..9).map(|_| b.carried_v()).collect();
        let x = b.vload(arr, 0, 1, 64, 64, 0);
        for &c in &carried {
            b.vadd_into(c, c, x, 64);
        }
        b.finish();
        let _ = alloc(&k);
    }
}
