//! Lowering: allocated template code → dynamic instruction trace.
//!
//! Expands each loop segment over its (outer × inner) iteration space,
//! instantiating concrete addresses, inserting `SetVl`/`SetVs` control
//! instructions the way strip-mined Convex code does, and emitting the
//! loop-control scalar overhead (counter increment + backward branch) on
//! the reserved registers `A7` (counter) and `A6` (limit).
//!
//! Static PCs are stable across iterations so that the OOOVA's branch
//! target buffer sees the same loop branch every time.

use std::sync::{Arc, OnceLock};

use oov_exec::{BaseImage, Machine, MemImage};
use oov_isa::{ArchReg, BranchInfo, Instruction, MemRef, Opcode, RegClass, Trace};

use crate::ir::{AddrExpr, Kernel};
use crate::regalloc::{allocate_segment, AllocatedSegment, SlotAllocator, SpillSummary, TInst};

/// Loop counter register reserved by the lowerer.
pub const LOOP_COUNTER: ArchReg = ArchReg::A(7);
/// Loop limit register reserved by the lowerer.
pub const LOOP_LIMIT: ArchReg = ArchReg::A(6);

/// One lowering step: either a template instruction or a control marker.
#[derive(Debug, Clone)]
enum Step {
    /// Set the vector-length register.
    SetVl(u16),
    /// Set the vector-stride register (element stride).
    SetVs(i64),
    /// A body instruction.
    Body(TInst),
    /// Increment the loop counter.
    CounterAdd,
    /// The backward branch; `trips` decides taken/not-taken per iteration.
    BackBranch,
}

fn mem_ref_for(t: &TInst, addr: &AddrExpr, outer: u64, iter: u64) -> MemRef {
    let base = addr.at(outer, iter);
    match t.op {
        Opcode::SLoad | Opcode::SStore => MemRef::scalar(base),
        Opcode::VGather | Opcode::VScatter => {
            let span = addr.indexed_span.expect("indexed access without span");
            MemRef::indexed(base, base, base + span)
        }
        _ => MemRef::strided(base, addr.stride_bytes, t.vl),
    }
}

fn instantiate(t: &TInst, outer: u64, iter: u64, pc: u64) -> Instruction {
    let mut inst = match (t.op.is_load(), t.op.is_store()) {
        (true, _) => {
            let mem = mem_ref_for(t, t.addr.as_ref().expect("load without addr"), outer, iter);
            Instruction::load(t.op, t.dst.expect("load without dst"), &t.srcs, mem, t.vl)
        }
        (_, true) => {
            let mem = mem_ref_for(t, t.addr.as_ref().expect("store without addr"), outer, iter);
            Instruction::store(t.op, &t.srcs, mem, t.vl)
        }
        _ => {
            if t.op.is_vector() {
                Instruction::vector(
                    t.op,
                    t.dst.expect("vector op without dst"),
                    &t.srcs,
                    t.vl,
                    1,
                )
            } else {
                match t.dst {
                    Some(d) => Instruction::scalar(t.op, d, &t.srcs),
                    None => Instruction {
                        op: t.op,
                        dst: None,
                        srcs: [None; 4],
                        vl: 1,
                        vs: 1,
                        mem: None,
                        branch: None,
                        is_spill: false,
                        pc: 0,
                        imm: 0,
                    },
                }
            }
        }
    };
    inst.imm = t.imm;
    inst.pc = pc;
    if t.is_spill {
        inst.is_spill = true;
    }
    inst
}

/// Builds the per-iteration step sequence for one segment: `SetVl`/`SetVs`
/// bookkeeping, the body, and the loop control.
fn iteration_steps(body: &[TInst]) -> Vec<Step> {
    let mut steps = Vec::with_capacity(body.len() + 8);
    let mut cur_vl: Option<u16> = None;
    let mut cur_vs: Option<i64> = None;
    for t in body {
        if t.op.is_vector() {
            if cur_vl != Some(t.vl) {
                steps.push(Step::SetVl(t.vl));
                cur_vl = Some(t.vl);
            }
            if t.op.is_mem() {
                if let Some(a) = &t.addr {
                    if a.indexed_span.is_none() {
                        let vs = a.stride_bytes / 8;
                        if cur_vs != Some(vs) {
                            steps.push(Step::SetVs(vs));
                            cur_vs = Some(vs);
                        }
                    }
                }
            }
        }
        steps.push(Step::Body(t.clone()));
    }
    steps.push(Step::CounterAdd);
    steps.push(Step::BackBranch);
    steps
}

/// Zero-initialisation of the pinned (carried) registers: `x ^ x` for
/// vectors and masks, `lui 0` for scalars.
fn zero_init(pinned: &[ArchReg], pc: &mut u64, trace: &mut Trace) {
    for &r in pinned {
        let inst = match r.class() {
            RegClass::V => Instruction::vector(Opcode::VLogic, r, &[r, r], 128, 1),
            RegClass::Mask => Instruction::vector(Opcode::VMaskOp, r, &[r, r], 128, 1),
            _ => Instruction::scalar(Opcode::SLui, r, &[]),
        };
        trace.push(inst.at(*pc));
        *pc += 4;
    }
}

/// Lowers already-scheduled, allocated segments, producing the dynamic
/// trace.
pub(crate) fn lower_segments(
    name: &str,
    segments: &[crate::ir::LoopSeg],
    allocated: &[AllocatedSegment],
) -> (Trace, SpillSummary) {
    let mut trace = Trace::new(name);
    let mut spill = SpillSummary::default();
    let mut pc: u64 = 0x1000;
    for (seg, alloc) in segments.iter().zip(allocated) {
        spill.merge(&alloc.summary);
        let steps = iteration_steps(&alloc.body);
        // Fixed PCs: prologue, then one slot per step.
        for outer in 0..u64::from(seg.outer_trips) {
            let mut ppc = pc;
            // Prologue: counter = 0, limit = trips, zero the carried regs.
            trace.push(
                Instruction::scalar(Opcode::SLui, LOOP_COUNTER, &[])
                    .with_imm(0)
                    .at(ppc),
            );
            ppc += 4;
            trace.push(
                Instruction::scalar(Opcode::SLui, LOOP_LIMIT, &[])
                    .with_imm(i64::from(seg.trips))
                    .at(ppc),
            );
            ppc += 4;
            zero_init(&alloc.pinned, &mut ppc, &mut trace);
            let loop_top = ppc;
            for iter in 0..u64::from(seg.trips) {
                let mut ipc = loop_top;
                for step in &steps {
                    match step {
                        Step::SetVl(vl) => {
                            trace.push(Instruction {
                                op: Opcode::SetVl,
                                dst: None,
                                srcs: [None; 4],
                                vl: 1,
                                vs: 1,
                                mem: None,
                                branch: None,
                                is_spill: false,
                                pc: ipc,
                                imm: i64::from(*vl),
                            });
                        }
                        Step::SetVs(vs) => {
                            trace.push(Instruction {
                                op: Opcode::SetVs,
                                dst: None,
                                srcs: [None; 4],
                                vl: 1,
                                vs: 1,
                                mem: None,
                                branch: None,
                                is_spill: false,
                                pc: ipc,
                                imm: *vs,
                            });
                        }
                        Step::Body(t) => {
                            trace.push(instantiate(t, outer, iter, ipc));
                        }
                        Step::CounterAdd => {
                            trace.push(
                                Instruction::scalar(Opcode::SAddA, LOOP_COUNTER, &[LOOP_COUNTER])
                                    .with_imm(1)
                                    .at(ipc),
                            );
                        }
                        Step::BackBranch => {
                            let taken = iter + 1 < u64::from(seg.trips);
                            trace.push(
                                Instruction::control(
                                    Opcode::Branch,
                                    &[LOOP_COUNTER, LOOP_LIMIT],
                                    BranchInfo {
                                        taken,
                                        target: if taken { loop_top } else { ipc + 4 },
                                    },
                                )
                                .at(ipc),
                            );
                        }
                    }
                    ipc += 4;
                }
                if iter + 1 == u64::from(seg.trips) {
                    ppc = ipc;
                }
            }
            pc = ppc + 16; // gap between outer iterations / segments
        }
        pc += 64;
    }
    (trace, spill)
}

/// A fully compiled program: the dynamic trace plus everything needed to
/// execute and check it.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// Program name (the kernel's name).
    pub name: String,
    /// The dynamic instruction trace the simulators consume.
    pub trace: Trace,
    /// Initial memory contents for functional execution.
    pub mem_init: Vec<(u64, u64)>,
    /// Spill code inserted by the register allocator.
    pub spill: SpillSummary,
    /// The seeded base image, built once on first use and shared by
    /// every machine forked from this program.
    base: OnceLock<Arc<BaseImage>>,
}

impl CompiledProgram {
    /// The program's frozen initial-memory image. `mem_init` is seeded
    /// exactly once per program (cached behind a `OnceLock`); every
    /// replay forks this base copy-on-write instead of re-seeding.
    #[must_use]
    pub fn base_image(&self) -> &Arc<BaseImage> {
        self.base.get_or_init(|| {
            let mut m = MemImage::new();
            m.seed(&self.mem_init);
            Arc::new(m.freeze())
        })
    }

    /// A machine with zeroed registers whose memory is a copy-on-write
    /// fork of [`CompiledProgram::base_image`]: on warm calls this
    /// performs zero seed work and zero page allocation for read-only
    /// data.
    #[must_use]
    pub fn fresh_machine(&self) -> Machine {
        Machine::from_base(self.base_image())
    }

    /// A golden-model machine with the program's initial memory
    /// installed (an alias of [`CompiledProgram::fresh_machine`]).
    #[must_use]
    pub fn golden_machine(&self) -> Machine {
        self.fresh_machine()
    }
}

/// Compilation pipeline options.
#[derive(Debug, Clone, Copy)]
pub struct CompileOptions {
    /// Run the list scheduler before allocation (on by default; the
    /// ablation bench turns it off).
    pub schedule: bool,
    /// Latency model used for scheduling priorities.
    pub lat: oov_isa::LatencyModel,
}

impl Default for CompileOptions {
    fn default() -> Self {
        CompileOptions {
            schedule: true,
            lat: oov_isa::LatencyModel::reference(),
        }
    }
}

/// Compiles a kernel: schedule → allocate → lower.
#[must_use]
pub fn compile_with(kernel: &Kernel, opts: &CompileOptions) -> CompiledProgram {
    // Only the segments are copied for scheduling — `mem_init` (by far
    // the largest part of a paper-scale kernel) is cloned exactly
    // once, into the compiled program.
    let mut segments: Vec<crate::ir::LoopSeg> = kernel.segments().to_vec();
    if opts.schedule {
        for seg in &mut segments {
            crate::sched::schedule_segment(seg, &opts.lat);
        }
    }
    let mut slots = SlotAllocator::new();
    let allocated: Vec<AllocatedSegment> = segments
        .iter()
        .map(|seg| allocate_segment(seg, &mut slots))
        .collect();
    let (trace, spill) = lower_segments(kernel.name(), &segments, &allocated);
    CompiledProgram {
        name: kernel.name().to_owned(),
        trace,
        mem_init: kernel.mem_init.clone(),
        spill,
        base: OnceLock::new(),
    }
}

/// Compiles with default options.
#[must_use]
pub fn compile(kernel: &Kernel) -> CompiledProgram {
    compile_with(kernel, &CompileOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::Kernel;
    use oov_isa::Opcode;

    fn two_vl_kernel() -> Kernel {
        let mut k = Kernel::new("twovl");
        let a = k.array_init(4096, |i| i);
        let out = k.array(4096);
        let mut b = k.loop_build(3);
        let x = b.vload(a, 0, 1, 64, 64, 0);
        let y = b.vload(a, 1024, 2, 32, 32, 0); // different vl AND stride
        b.vstore(x, out, 0, 1, 64, 64, 0);
        b.vstore(y, out, 2048, 2, 32, 32, 0);
        b.finish();
        k
    }

    #[test]
    fn setvl_emitted_on_length_changes() {
        let prog = compile(&two_vl_kernel());
        let setvls: Vec<i64> = prog
            .trace
            .iter()
            .filter(|i| i.op == Opcode::SetVl)
            .map(|i| i.imm)
            .collect();
        // Each iteration switches lengths at least once: 3 iterations,
        // >= 2 SetVl each.
        assert!(setvls.len() >= 6, "too few SetVl: {}", setvls.len());
        assert!(setvls.contains(&64) && setvls.contains(&32));
    }

    #[test]
    fn setvs_emitted_on_stride_changes() {
        let prog = compile(&two_vl_kernel());
        let strides: Vec<i64> = prog
            .trace
            .iter()
            .filter(|i| i.op == Opcode::SetVs)
            .map(|i| i.imm)
            .collect();
        assert!(strides.contains(&1) && strides.contains(&2));
    }

    #[test]
    fn loop_pcs_are_stable_across_iterations() {
        // The BTB relies on a given static instruction having the same
        // PC every dynamic instance.
        let prog = compile(&two_vl_kernel());
        let mut by_branch: Vec<u64> = prog
            .trace
            .iter()
            .filter(|i| i.op == Opcode::Branch)
            .map(|i| i.pc)
            .collect();
        by_branch.dedup();
        assert_eq!(by_branch.len(), 1, "loop branch must keep one PC");
        // And the taken branch targets the loop top every time.
        let targets: Vec<u64> = prog
            .trace
            .iter()
            .filter_map(|i| i.branch.filter(|b| b.taken).map(|b| b.target))
            .collect();
        assert!(targets.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn spill_flag_survives_lowering() {
        // High-pressure body: spill instructions in the trace must carry
        // the is_spill marker for Table 3 accounting.
        let mut k = Kernel::new("spill");
        let a = k.array_init(64 * 1024, |i| i);
        let out = k.array(64 * 1024);
        let mut b = k.loop_build(2);
        let loads: Vec<_> = (0..12).map(|i| b.vload(a, i * 512, 1, 64, 64, 0)).collect();
        for j in 0..6u64 {
            let mut acc = loads[j as usize];
            for i in 1..12 {
                acc = b.vadd(acc, loads[(j as usize + i) % 12], 64);
            }
            b.vstore(acc, out, j * 4096, 1, 64, 64, 0);
        }
        b.finish();
        let prog = compile(&k);
        assert!(prog.trace.iter().any(|i| i.is_spill));
        assert!(prog.spill.vloads > 0);
    }

    #[test]
    fn zero_init_precedes_carried_use() {
        let mut k = Kernel::new("carried");
        let a = k.array_init(4096, |i| i);
        let out = k.array(4096);
        let mut b = k.loop_build(2);
        let acc = b.carried_v();
        let x = b.vload(a, 0, 1, 64, 64, 0);
        b.vadd_into(acc, acc, x, 64);
        b.vstore(acc, out, 0, 1, 64, 64, 0);
        b.finish();
        let prog = compile(&k);
        // The first instruction writing the pinned register must be the
        // zero-init (VLogic reg^reg), before any read of it.
        let first_write = prog
            .trace
            .iter()
            .position(|i| i.dst.map(|d| d.is_vector()).unwrap_or(false))
            .unwrap();
        assert_eq!(prog.trace.instructions()[first_write].op, Opcode::VLogic);
    }
}
