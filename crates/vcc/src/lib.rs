//! Compiler substrate of the reproduction: kernel IR → scheduled,
//! register-allocated, lowered instruction traces.
//!
//! The paper compiled the Perfect Club / Specfp92 benchmarks with the
//! Convex compiler and traced them with Dixie on real hardware. This
//! crate replaces that toolchain:
//!
//! 1. [`Kernel`] — loop-oriented IR over unlimited virtual registers
//!    (built by `oov-kernels`);
//! 2. list scheduling — the stand-in for the Convex compiler's
//!    conflict-avoiding instruction scheduler;
//! 3. register allocation onto the 8 architectural registers per class,
//!    generating **real spill code** — the traffic the paper's Table 3
//!    reports and §6's dynamic load elimination removes;
//! 4. lowering (see [`compile`]) — expansion over the iteration space
//!    into a dynamic [`oov_isa::Trace`] with concrete addresses,
//!    `SetVl`/`SetVs` bookkeeping, loop-control scalars and branches.
//!
//! Correctness is checked against two independent golden models: the
//! virtual-register interpreter ([`IrInterp`]) and the architectural
//! executor (`oov-exec`) running the lowered trace.
//!
//! # Example
//!
//! ```
//! use oov_vcc::{compile, Kernel};
//!
//! let mut k = Kernel::new("daxpy");
//! let x = k.array_init(256, |i| i);
//! let y = k.array_init(256, |i| 2 * i);
//! let mut b = k.loop_build(2);
//! let a = b.slui(3);
//! let xv = b.vload(x, 0, 1, 128, 128, 0);
//! let yv = b.vload(y, 0, 1, 128, 128, 0);
//! let ax = b.vmul_s(xv, a, 128);
//! let r = b.vadd(ax, yv, 128);
//! b.vstore(r, y, 0, 1, 128, 128, 0);
//! b.finish();
//!
//! let prog = compile(&k);
//! assert!(prog.trace.stats().vector_insts > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interp;
pub mod ir;
mod lower;
mod regalloc;
mod sched;

pub use interp::IrInterp;
pub use ir::{
    AddrExpr, ArrayHandle, KInst, Kernel, LoopBuilder, LoopSeg, VirtReg, ARRAY_SPACE_BASE,
    SPILL_SPACE_BASE,
};
pub use lower::{compile, compile_with, CompileOptions, CompiledProgram, LOOP_COUNTER, LOOP_LIMIT};
pub use regalloc::SpillSummary;

#[cfg(test)]
mod tests {
    use super::*;

    /// End-to-end golden check: the IR interpreter and the architectural
    /// executor running the compiled trace must agree on the data space.
    fn check_golden(k: &Kernel) -> CompiledProgram {
        let prog = compile(k);
        let want = IrInterp::run_kernel(k);
        let mut m = prog.golden_machine();
        m.run(&prog.trace);
        for (addr, val) in want.iter() {
            if addr < SPILL_SPACE_BASE {
                assert_eq!(
                    m.memory().load(addr),
                    val,
                    "mismatch at {addr:#x} in {}",
                    prog.name
                );
            }
        }
        for (addr, val) in m.memory().iter() {
            if addr < SPILL_SPACE_BASE {
                assert_eq!(want.load(addr), val, "extra write at {addr:#x}");
            }
        }
        prog
    }

    #[test]
    fn golden_simple_streaming() {
        let mut k = Kernel::new("stream");
        let a = k.array_init(1024, |i| i * 3);
        let out = k.array(1024);
        let mut b = k.loop_build(8);
        let x = b.vload(a, 0, 1, 128, 128, 0);
        let y = b.vmul(x, x, 128);
        b.vstore(y, out, 0, 1, 128, 128, 0);
        b.finish();
        check_golden(&k);
    }

    /// Builds a kernel whose 12 loaded vectors are all live across the
    /// whole body (each output combines every input), so no instruction
    /// schedule can avoid exceeding the 8 vector registers.
    fn all_live_pressure_kernel() -> Kernel {
        let mut k = Kernel::new("spilly");
        let a = k.array_init(16 * 1024, |i| i ^ 0x5555);
        let out = k.array(16 * 1024);
        let mut b = k.loop_build(4);
        let loads: Vec<_> = (0..12).map(|i| b.vload(a, i * 512, 1, 64, 64, 0)).collect();
        for j in 0..6u64 {
            let mut acc = loads[j as usize];
            for i in 1..12 {
                acc = b.vadd(acc, loads[(j as usize + i) % 12], 64);
            }
            b.vstore(acc, out, j * 512, 1, 64, 64, 0);
        }
        b.finish();
        k
    }

    #[test]
    fn golden_high_pressure_with_spills() {
        let k = all_live_pressure_kernel();
        let prog = check_golden(&k);
        assert!(
            prog.spill.vloads > 0,
            "high pressure must generate vector spill reloads"
        );
    }

    #[test]
    fn golden_computed_pressure_spill_stores() {
        let mut k = Kernel::new("spillstore");
        let a = k.array_init(8 * 1024, |i| i + 7);
        let out = k.array(8 * 1024);
        let mut b = k.loop_build(3);
        let base = b.vload(a, 0, 1, 64, 64, 0);
        // 11 *computed* (non-rematerialisable) vectors, all live across
        // every output so scheduling cannot shrink the pressure.
        let computed: Vec<_> = (0..11)
            .map(|i| {
                let s = b.slui(i + 1);
                b.vmul_s(base, s, 64)
            })
            .collect();
        for j in 0..4u64 {
            let mut acc = computed[j as usize];
            for i in 1..11 {
                acc = b.vadd(acc, computed[(j as usize + i) % 11], 64);
            }
            b.vstore(acc, out, j * 512, 1, 64, 64, 0);
        }
        b.finish();
        let prog = check_golden(&k);
        assert!(prog.spill.vstores > 0);
    }

    #[test]
    fn golden_masks_and_reductions() {
        let mut k = Kernel::new("masks");
        let a = k.array_init(512, |i| i % 97);
        let b_arr = k.array_init(512, |i| 50 + (i % 3));
        let out = k.array(512);
        let sums = k.array(64);
        let mut b = k.loop_build(4);
        let x = b.vload(a, 0, 1, 128, 128, 0);
        let y = b.vload(b_arr, 0, 1, 128, 128, 0);
        let m = b.vcmp(x, y, 128);
        let sel = b.vmerge(x, y, m, 128);
        b.vstore(sel, out, 0, 1, 128, 128, 0);
        let s = b.vreduce(sel, 128);
        b.sstore(s, sums, 0, 1);
        b.finish();
        check_golden(&k);
    }

    #[test]
    fn golden_gather_scatter() {
        let mut k = Kernel::new("gs");
        // Index array: byte offsets, a permutation of 0..64 words.
        let idx = k.array_init(64, |i| (63 - i) * 8);
        let data = k.array_init(128, |i| 1000 + i);
        let out = k.array(128);
        let mut b = k.loop_build(2);
        let iv = b.vload(idx, 0, 1, 64, 0, 0);
        let g = b.vgather(iv, data, 0, 64, 64);
        b.vscatter(g, iv, out, 0, 64, 64);
        b.finish();
        check_golden(&k);
    }

    #[test]
    fn golden_outer_loops() {
        let mut k = Kernel::new("outer");
        let a = k.array_init(4096, |i| i);
        let out = k.array(4096);
        let mut b = k.loop_build_2d(4, 3);
        let x = b.vload(a, 0, 1, 64, 64, 256);
        let y = b.vadd(x, x, 64);
        b.vstore(y, out, 0, 1, 64, 64, 256);
        b.finish();
        check_golden(&k);
    }

    #[test]
    fn golden_scalar_spills() {
        let mut k = Kernel::new("scalars");
        let a = k.array_init(1024, |i| i);
        let out = k.array(64);
        let mut b = k.loop_build(4);
        // 12 live scalar values force S-class spills.
        let scalars: Vec<_> = (0..12).map(|i| b.sload(a, i * 16, 1)).collect();
        let mut acc = scalars[11];
        for &s in scalars.iter().rev().skip(1) {
            acc = b.sadd(acc, s);
        }
        b.sstore(acc, out, 0, 1);
        b.finish();
        let prog = check_golden(&k);
        assert!(prog.spill.sloads > 0, "scalar pressure must spill");
    }

    #[test]
    fn trace_is_nonempty_and_has_branches() {
        let mut k = Kernel::new("b");
        let a = k.array_init(512, |i| i);
        let mut b = k.loop_build(5);
        let x = b.vload(a, 0, 1, 64, 64, 0);
        b.vstore(x, a, 0, 1, 64, 64, 0);
        b.finish();
        let prog = compile(&k);
        assert_eq!(prog.trace.stats().branches, 5);
        // Loop branch: taken 4 times, not taken once.
        let taken: Vec<bool> = prog
            .trace
            .iter()
            .filter_map(|i| i.branch.map(|b| b.taken))
            .collect();
        assert_eq!(taken, vec![true, true, true, true, false]);
    }

    #[test]
    fn unscheduled_compile_also_golden() {
        let mut k = Kernel::new("nosched");
        let a = k.array_init(2048, |i| 5 * i);
        let out = k.array(2048);
        let mut b = k.loop_build(3);
        let x = b.vload(a, 0, 1, 128, 128, 0);
        let y = b.vload(a, 1024, 1, 128, 128, 0);
        let z = b.vmul(x, y, 128);
        let w = b.vadd(z, x, 128);
        b.vstore(w, out, 0, 1, 128, 128, 0);
        b.finish();
        let opts = CompileOptions {
            schedule: false,
            ..CompileOptions::default()
        };
        let prog = compile_with(&k, &opts);
        let want = IrInterp::run_kernel(&k);
        let mut m = prog.golden_machine();
        m.run(&prog.trace);
        assert!(want
            .iter()
            .filter(|(a, _)| *a < SPILL_SPACE_BASE)
            .all(|(a, v)| m.memory().load(a) == v));
    }

    #[test]
    fn spill_loads_marked_in_trace_stats() {
        let prog = compile(&all_live_pressure_kernel());
        assert!(prog.trace.stats().vload_spill_words > 0);
    }
}
