//! Dep-free observability primitives for the simulation stack:
//! monotonic [`Counter`]s, [`Gauge`]s and mergeable log2-bucketed
//! [`Histogram`]s behind a named [`Registry`].
//!
//! The record path is lock-free: every metric is a handful of atomics
//! behind an [`Arc`] handle, so a worker shard records a latency with
//! two relaxed `fetch_add`s and one `fetch_max` — no lock, no
//! allocation. The registry's mutex guards only registration and
//! snapshotting, which happen off the hot path. Per-shard instances
//! (one histogram per worker, registered under distinct names) are
//! merged on the read side with [`Histogram::merge_from`].
//!
//! # Histogram layout
//!
//! Values 0–15 get exact unit buckets. Above that, each power-of-two
//! major bucket is split into 16 linear sub-buckets (4 significant
//! bits), HDR-style: `976` buckets cover the full `u64` range with a
//! worst-case relative error of 1/16 (6.25%). Percentiles use the
//! nearest-rank rule and report the containing bucket's lower bound,
//! so `percentile` on a histogram equals the bucket lower bound of the
//! same rank in a sorted reference vector — an exact, testable
//! equivalence (see the crate's property suite).
//!
//! # Example
//!
//! ```
//! use oov_obs::{Histogram, Registry};
//!
//! let reg = Registry::new();
//! let h = reg.histogram("latency_ns");
//! for v in [100, 200, 300, 400_000] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 4);
//! assert_eq!(h.max(), 400_000);
//! let snap = reg.snapshot();
//! let back = Histogram::from_json(snap.get("histograms").and_then(|h| h.get("latency_ns")).unwrap()).unwrap();
//! assert_eq!(back.count(), 4);
//! assert_eq!(back.percentile(50.0), h.percentile(50.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use oov_proto::Json;

/// Number of histogram buckets: 16 exact unit buckets plus 16 linear
/// sub-buckets for each of the 60 power-of-two majors `2^4..2^63`.
pub const NUM_BUCKETS: usize = 16 + 60 * 16;

/// Bucket index for a value: exact below 16, then log2 major × 16
/// linear sub-buckets keyed by the 4 bits after the leading one.
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let top = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (top - 4)) & 0xF) as usize;
        16 + (top - 4) * 16 + sub
    }
}

/// Lower bound (smallest value) of bucket `i` — what percentile
/// extraction reports for any value in the bucket.
///
/// # Panics
///
/// Panics if `i >= NUM_BUCKETS`.
#[must_use]
pub fn bucket_lo(i: usize) -> u64 {
    assert!(i < NUM_BUCKETS, "bucket index out of range");
    if i < 16 {
        i as u64
    } else {
        let top = (i - 16) / 16 + 4;
        let sub = ((i - 16) % 16) as u64;
        (1u64 << top) | (sub << (top - 4))
    }
}

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A signed gauge: a level that moves both ways (queue depth,
/// in-flight requests).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Subtracts one.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// Overwrites the level.
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    /// Current level.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

/// A mergeable log2-bucketed histogram of `u64` samples (nanoseconds,
/// cycles — any non-negative magnitude). See the crate docs for the
/// bucket layout and error bound.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample. Lock-free: two relaxed adds and a
    /// `fetch_max`.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    /// Largest recorded sample, exact (not bucketed). Zero when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max.load(Relaxed)
    }

    /// Arithmetic mean of the recorded samples; zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Nearest-rank percentile (`p` in 0–100), reported as the lower
    /// bound of the containing bucket (≤ 6.25% below the true value).
    /// Zero when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil() as u64;
        let rank = rank.clamp(1, count);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Relaxed);
            if cum >= rank {
                return bucket_lo(i);
            }
        }
        bucket_lo(NUM_BUCKETS - 1)
    }

    /// Folds another histogram into this one (bucket-wise addition;
    /// the max is the max of the two).
    pub fn merge_from(&self, other: &Histogram) {
        for (b, o) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = o.load(Relaxed);
            if n > 0 {
                b.fetch_add(n, Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Relaxed);
        self.sum.fetch_add(other.sum(), Relaxed);
        self.max.fetch_max(other.max(), Relaxed);
    }

    /// JSON form: `{"count", "sum", "max", "buckets": [[index, n], ...]}`
    /// with only the non-empty buckets listed.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Relaxed);
                (n > 0).then(|| Json::Arr(vec![Json::Num(i as f64), Json::Num(n as f64)]))
            })
            .collect();
        Json::obj(vec![
            ("count", Json::Num(self.count() as f64)),
            ("sum", Json::Num(self.sum() as f64)),
            ("max", Json::Num(self.max() as f64)),
            ("buckets", Json::Arr(buckets)),
        ])
    }

    /// Inverse of [`Histogram::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message when a field is missing, malformed or a
    /// bucket index is out of range.
    pub fn from_json(j: &Json) -> Result<Histogram, String> {
        let num = |field: &str| {
            j.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram: bad `{field}`"))
        };
        let h = Histogram::new();
        h.count.store(num("count")?, Relaxed);
        h.sum.store(num("sum")?, Relaxed);
        h.max.store(num("max")?, Relaxed);
        let buckets = j
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram: missing `buckets`")?;
        for pair in buckets {
            let cells = pair.as_arr().ok_or("histogram: bucket is not a pair")?;
            let (Some(i), Some(n)) = (
                cells.first().and_then(Json::as_usize),
                cells.get(1).and_then(Json::as_u64),
            ) else {
                return Err("histogram: malformed bucket pair".into());
            };
            if i >= NUM_BUCKETS {
                return Err(format!("histogram: bucket index {i} out of range"));
            }
            h.buckets[i].store(n, Relaxed);
        }
        Ok(h)
    }
}

/// A named metric handle held by the registry.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Registration hands out `Arc`
/// handles; recording through a handle never touches the registry
/// lock. [`Registry::snapshot`] serialises everything as one JSON
/// object with deterministic (sorted) key order.
#[derive(Debug, Default)]
pub struct Registry {
    inner: Mutex<Vec<(String, Metric)>>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut inner = self.inner.lock().expect("registry poisoned");
        if let Some((_, m)) = inner.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        inner.push((name.to_string(), m.clone()));
        m
    }

    /// Registers (or retrieves) a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) a histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different kind"),
        }
    }

    /// Serialises every registered metric:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`,
    /// keys sorted within each section.
    #[must_use]
    pub fn snapshot(&self) -> Json {
        let mut entries: Vec<(String, Metric)> =
            self.inner.lock().expect("registry poisoned").clone();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for (name, m) in &entries {
            match m {
                Metric::Counter(c) => counters.push((name.clone(), Json::Num(c.get() as f64))),
                Metric::Gauge(g) => gauges.push((name.clone(), Json::Num(g.get() as f64))),
                Metric::Histogram(h) => histograms.push((name.clone(), h.to_json())),
            }
        }
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_buckets_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_lo(v as usize), v);
        }
    }

    #[test]
    fn bucket_lo_is_the_bucket_floor() {
        for v in [
            16u64,
            17,
            31,
            32,
            33,
            1000,
            4095,
            4096,
            1 << 20,
            (1 << 20) + 12345,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            let lo = bucket_lo(i);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert_eq!(bucket_index(lo), i, "lo of bucket {i} maps elsewhere");
            // Relative error bound: lo >= v * 16/17 > v * (1 - 1/16).
            assert!(
                (v - lo) as f64 <= v as f64 / 16.0,
                "error too large for {v}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut prev = 0;
        for shift in 0..64 {
            for v in [(1u64 << shift), (1u64 << shift) + 1, (1u64 << shift) - 1] {
                let i = bucket_index(v);
                let _ = prev; // monotonicity checked pairwise below
                prev = i;
            }
        }
        // Dense check over a small range plus boundaries.
        let mut last = bucket_index(0);
        for v in 1..100_000u64 {
            let i = bucket_index(v);
            assert!(i >= last, "bucket_index not monotone at {v}");
            last = i;
        }
    }

    #[test]
    fn percentiles_and_mean() {
        let h = Histogram::new();
        assert_eq!(h.percentile(50.0), 0);
        h.record(10);
        assert_eq!(h.percentile(0.0), 10);
        assert_eq!(h.percentile(50.0), 10);
        assert_eq!(h.percentile(100.0), 10);
        for v in 1..=100u64 {
            let h = Histogram::new();
            for s in 1..=v {
                h.record(s);
            }
            // Values <= 15 are exact; nearest-rank p50 of 1..=v.
            let rank = ((0.5 * v as f64).ceil() as u64).clamp(1, v);
            if rank < 16 {
                assert_eq!(h.percentile(50.0), rank, "p50 of 1..={v}");
            }
        }
        let h = Histogram::new();
        h.record(2);
        h.record(4);
        assert!((h.mean() - 3.0).abs() < 1e-12);
        assert_eq!(h.max(), 4);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 100, 1 << 30] {
            a.record(v);
        }
        for v in [2u64, 100, 1 << 40] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 1 + 5 + 100 + (1 << 30) + 2 + 100 + (1 << 40));
        assert_eq!(a.max(), 1 << 40);
    }

    #[test]
    fn json_round_trip() {
        let h = Histogram::new();
        for v in [0u64, 15, 16, 1000, 1 << 50] {
            h.record(v);
        }
        let j = h.to_json();
        let text = j.to_string();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), h.count());
        assert_eq!(back.max(), h.max());
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 100.0] {
            assert_eq!(back.percentile(p), h.percentile(p));
        }
    }

    #[test]
    fn registry_hands_out_shared_handles() {
        let reg = Registry::new();
        let c1 = reg.counter("reqs");
        let c2 = reg.counter("reqs");
        c1.inc();
        c2.add(2);
        assert_eq!(c1.get(), 3);
        let g = reg.gauge("depth");
        g.inc();
        g.inc();
        g.dec();
        assert_eq!(g.get(), 1);
        reg.histogram("lat").record(42);
        let snap = reg.snapshot();
        assert_eq!(
            snap.get("counters")
                .and_then(|c| c.get("reqs"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert_eq!(
            snap.get("gauges")
                .and_then(|g| g.get("depth"))
                .and_then(Json::as_u64),
            Some(1)
        );
        assert!(snap.get("histograms").and_then(|h| h.get("lat")).is_some());
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_confusion() {
        let reg = Registry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }
}
