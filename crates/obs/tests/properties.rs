//! Model-based property suite for the histogram, mirroring the
//! SlotQueue/paged-image suites: a deterministic seed loop drives
//! random `u64` samples through a [`Histogram`] and a sorted-`Vec`
//! reference model, asserting the exact percentile equivalence the
//! bucket scheme guarantees (nearest rank + monotone bucketing ⇒
//! `h.percentile(p) == bucket_lo(bucket_index(ref[rank]))`), merge
//! linearity, and a lossless JSON round trip.

use oov_obs::{bucket_index, bucket_lo, Histogram, NUM_BUCKETS};
use oov_proto::Json;

const SEEDS: [u64; 16] = [
    0x9e37_79b9_7f4a_7c15,
    0x0123_4567_89ab_cdef,
    0xdead_beef_cafe_f00d,
    1,
    2,
    3,
    42,
    0xffff_ffff_ffff_fffe,
    0x5555_5555_5555_5555,
    0xaaaa_aaaa_aaaa_aaaa,
    7,
    11,
    13,
    0x1357_9bdf_2468_ace0,
    99,
    123_456_789,
];

/// SplitMix64 — the workspace's dependency-free PRNG.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A sample spread over the full magnitude range: a raw draw masked
/// down by a random shift, so small values, bucket boundaries and
/// huge values all appear.
fn sample(state: &mut u64) -> u64 {
    let v = splitmix(state);
    let shift = (splitmix(state) % 64) as u32;
    v >> shift
}

/// The reference model's percentile: nearest rank over a sorted copy,
/// then the value's bucket lower bound (the histogram's resolution).
fn ref_percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    let rank = rank.clamp(1, sorted.len());
    bucket_lo(bucket_index(sorted[rank - 1]))
}

const PERCENTILES: [f64; 8] = [0.0, 10.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0];

#[test]
fn histogram_matches_sorted_vec_reference() {
    for seed in SEEDS {
        let mut state = seed;
        let h = Histogram::new();
        let mut model: Vec<u64> = Vec::new();
        let n = 1 + (splitmix(&mut state) % 2000) as usize;
        for _ in 0..n {
            let v = sample(&mut state);
            h.record(v);
            model.push(v);
        }
        model.sort_unstable();
        assert_eq!(h.count(), model.len() as u64, "seed {seed:#x}");
        assert_eq!(h.max(), *model.last().unwrap(), "seed {seed:#x}");
        assert_eq!(
            h.sum(),
            model.iter().fold(0u64, |a, &v| a.wrapping_add(v)),
            "seed {seed:#x}"
        );
        for p in PERCENTILES {
            assert_eq!(
                h.percentile(p),
                ref_percentile(&model, p),
                "seed {seed:#x}, p{p}"
            );
        }
    }
}

#[test]
fn bucket_boundary_values_round_trip_through_their_bucket() {
    // Every power of two, its neighbours, and every sub-bucket floor of
    // a few majors: the floor of a value's bucket maps back to the same
    // bucket and never exceeds the value.
    let mut cases: Vec<u64> = vec![0, 1, 15, 16, 17, u64::MAX];
    for shift in 1..64u32 {
        let p = 1u64 << shift;
        cases.extend([p - 1, p, p + 1]);
    }
    for top in [4u32, 10, 33, 63] {
        for sub in 0..16u64 {
            cases.push((1u64 << top) | (sub << (top - 4)));
        }
    }
    for v in cases {
        let i = bucket_index(v);
        assert!(i < NUM_BUCKETS, "index out of range for {v}");
        let lo = bucket_lo(i);
        assert!(lo <= v, "floor above value for {v}");
        assert_eq!(bucket_index(lo), i, "floor changed bucket for {v}");
    }
    // Monotone across all the interesting points.
    let mut pts: Vec<u64> = (0..4096).collect();
    for shift in 12..64u32 {
        pts.extend([(1u64 << shift) - 1, 1u64 << shift, (1u64 << shift) + 1]);
    }
    pts.sort_unstable();
    for w in pts.windows(2) {
        assert!(
            bucket_index(w[0]) <= bucket_index(w[1]),
            "bucket_index not monotone between {} and {}",
            w[0],
            w[1]
        );
    }
}

#[test]
fn empty_and_single_sample_percentiles() {
    let h = Histogram::new();
    for p in PERCENTILES {
        assert_eq!(h.percentile(p), 0, "empty histogram p{p}");
    }
    assert_eq!(h.mean(), 0.0);
    for v in [0u64, 7, 16, 1 << 40] {
        let h = Histogram::new();
        h.record(v);
        let expect = bucket_lo(bucket_index(v));
        for p in PERCENTILES {
            assert_eq!(h.percentile(p), expect, "single sample {v} p{p}");
        }
    }
}

#[test]
fn merge_equals_recording_the_concatenation() {
    for seed in SEEDS {
        let mut state = seed;
        let parts: Vec<Vec<u64>> = (0..4)
            .map(|_| {
                let n = (splitmix(&mut state) % 300) as usize;
                (0..n).map(|_| sample(&mut state)).collect()
            })
            .collect();
        // Record each part into its own histogram (a per-shard
        // instance), merge into one.
        let merged = Histogram::new();
        for part in &parts {
            let shard = Histogram::new();
            for &v in part {
                shard.record(v);
            }
            merged.merge_from(&shard);
        }
        // Reference: one histogram over the concatenation.
        let all = Histogram::new();
        let mut model: Vec<u64> = Vec::new();
        for part in &parts {
            for &v in part {
                all.record(v);
                model.push(v);
            }
        }
        model.sort_unstable();
        assert_eq!(merged.count(), all.count(), "seed {seed:#x}");
        assert_eq!(merged.sum(), all.sum(), "seed {seed:#x}");
        assert_eq!(merged.max(), all.max(), "seed {seed:#x}");
        for p in PERCENTILES {
            assert_eq!(merged.percentile(p), all.percentile(p), "seed {seed:#x}");
            assert_eq!(
                merged.percentile(p),
                ref_percentile(&model, p),
                "seed {seed:#x}"
            );
        }
    }
}

#[test]
fn json_round_trip_is_lossless() {
    for seed in SEEDS {
        let mut state = seed;
        let h = Histogram::new();
        let n = (splitmix(&mut state) % 500) as usize;
        for _ in 0..n {
            // Cap at 2^40 so even the 500-sample sum stays under 2^53
            // and survives the f64 wire representation exactly
            // (latencies in ns are far below either bound).
            h.record(sample(&mut state) & ((1 << 40) - 1));
        }
        let text = h.to_json().to_string();
        let back = Histogram::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.count(), h.count(), "seed {seed:#x}");
        assert_eq!(back.sum(), h.sum(), "seed {seed:#x}");
        assert_eq!(back.max(), h.max(), "seed {seed:#x}");
        for p in PERCENTILES {
            assert_eq!(back.percentile(p), h.percentile(p), "seed {seed:#x}");
        }
    }
}
