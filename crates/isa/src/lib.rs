//! ISA model for the reproduction of *Out-of-Order Vector Architectures*
//! (Espasa, Valero, Smith — MICRO-30, 1997).
//!
//! This crate defines everything the simulators, the compiler substrate and
//! the benchmark suite share:
//!
//! * [`ArchReg`] / [`RegClass`] — the architectural register file of the
//!   Convex C3400-like reference machine (8 × A, 8 × S, 8 × V, 8 × mask).
//! * [`Opcode`] — the instruction repertoire, with its functional-unit
//!   class ([`FuClass`]) and latency class ([`LatClass`]).
//! * [`Instruction`] / [`MemRef`] — one dynamic (traced) instruction.
//! * [`Trace`] — a dynamic instruction stream plus per-program statistics
//!   (the raw material for Table 2 of the paper).
//! * [`LatencyModel`] — the reconstruction of the paper's Table 1.
//! * [`RefConfig`] / [`OooConfig`] — machine parameter blocks for the two
//!   simulated implementations.
//!
//! # Example
//!
//! ```
//! use oov_isa::{ArchReg, Instruction, Opcode, Trace};
//!
//! let mut trace = Trace::new("example");
//! trace.push(
//!     Instruction::vector(Opcode::VAdd, ArchReg::V(2), &[ArchReg::V(0), ArchReg::V(1)], 128, 1)
//! );
//! assert_eq!(trace.stats().vector_insts, 1);
//! assert_eq!(trace.stats().vector_ops, 128);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod inst;
mod latency;
mod opcode;
mod reg;
mod trace;

pub use config::{
    CommitMode, LoadElimMode, MachineConfig, MachineKind, OooConfig, RefConfig, ScalarCacheCfg,
};
pub use inst::{BranchInfo, Instruction, MemKind, MemRef};
pub use latency::LatencyModel;
pub use opcode::{FuClass, LatClass, Opcode};
pub use reg::{ArchReg, RegClass, MAX_VL, NUM_A_REGS, NUM_MASK_REGS, NUM_S_REGS, NUM_V_REGS};
pub use trace::{Trace, TraceStats};
