//! Architectural registers of the reference (Convex C3400-like) ISA.

use std::fmt;

/// Number of architectural address (`A`) registers.
pub const NUM_A_REGS: u8 = 8;
/// Number of architectural scalar (`S`) registers.
pub const NUM_S_REGS: u8 = 8;
/// Number of architectural vector (`V`) registers.
pub const NUM_V_REGS: u8 = 8;
/// Number of architectural vector-mask registers.
pub const NUM_MASK_REGS: u8 = 8;
/// Maximum vector length: each vector register holds 128 × 64-bit elements.
pub const MAX_VL: u16 = 128;

/// The four architectural register classes of the machine.
///
/// The out-of-order implementation keeps one rename map and one free list
/// per class (paper §2.2: "There are 4 independent mapping tables, one for
/// each type of register: A, S, V and mask registers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// Address registers (scalar unit).
    A,
    /// Scalar data registers (scalar unit).
    S,
    /// Vector registers (128 × 64-bit elements).
    V,
    /// Vector mask registers.
    Mask,
}

impl RegClass {
    /// All register classes, in a stable order.
    pub const ALL: [RegClass; 4] = [RegClass::A, RegClass::S, RegClass::V, RegClass::Mask];

    /// Number of *architectural* registers in this class.
    #[must_use]
    pub fn arch_count(self) -> u8 {
        match self {
            RegClass::A => NUM_A_REGS,
            RegClass::S => NUM_S_REGS,
            RegClass::V => NUM_V_REGS,
            RegClass::Mask => NUM_MASK_REGS,
        }
    }

    /// `true` for the classes handled by the scalar unit (`A` and `S`).
    #[must_use]
    pub fn is_scalar(self) -> bool {
        matches!(self, RegClass::A | RegClass::S)
    }
}

impl fmt::Display for RegClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RegClass::A => "A",
            RegClass::S => "S",
            RegClass::V => "V",
            RegClass::Mask => "VM",
        };
        f.write_str(s)
    }
}

/// One architectural register: a class plus an index within the class.
///
/// # Example
///
/// ```
/// use oov_isa::{ArchReg, RegClass};
///
/// let r = ArchReg::V(3);
/// assert_eq!(r.class(), RegClass::V);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "V3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ArchReg {
    /// An address register `A0..A7`.
    A(u8),
    /// A scalar register `S0..S7`.
    S(u8),
    /// A vector register `V0..V7`.
    V(u8),
    /// A vector-mask register `VM0..VM7`.
    Mask(u8),
}

impl ArchReg {
    /// The class this register belongs to.
    #[must_use]
    pub fn class(self) -> RegClass {
        match self {
            ArchReg::A(_) => RegClass::A,
            ArchReg::S(_) => RegClass::S,
            ArchReg::V(_) => RegClass::V,
            ArchReg::Mask(_) => RegClass::Mask,
        }
    }

    /// The index within the class (e.g. the `3` of `V3`).
    #[must_use]
    pub fn index(self) -> u8 {
        match self {
            ArchReg::A(i) | ArchReg::S(i) | ArchReg::V(i) | ArchReg::Mask(i) => i,
        }
    }

    /// Builds a register from a class and index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for the class.
    #[must_use]
    pub fn new(class: RegClass, index: u8) -> Self {
        assert!(
            index < class.arch_count(),
            "register index {index} out of range for class {class}"
        );
        match class {
            RegClass::A => ArchReg::A(index),
            RegClass::S => ArchReg::S(index),
            RegClass::V => ArchReg::V(index),
            RegClass::Mask => ArchReg::Mask(index),
        }
    }

    /// `true` if this is a vector (`V`) register.
    #[must_use]
    pub fn is_vector(self) -> bool {
        matches!(self, ArchReg::V(_))
    }

    /// Validity check: index in range for the class.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.index() < self.class().arch_count()
    }

    /// A dense index over all architectural registers (for table lookups).
    ///
    /// The order is `A0..A7, S0..S7, V0..V7, VM0..VM7`.
    #[must_use]
    pub fn dense_index(self) -> usize {
        match self {
            ArchReg::A(i) => i as usize,
            ArchReg::S(i) => NUM_A_REGS as usize + i as usize,
            ArchReg::V(i) => (NUM_A_REGS + NUM_S_REGS) as usize + i as usize,
            ArchReg::Mask(i) => (NUM_A_REGS + NUM_S_REGS + NUM_V_REGS) as usize + i as usize,
        }
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class(), self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_counts() {
        assert_eq!(RegClass::A.arch_count(), 8);
        assert_eq!(RegClass::S.arch_count(), 8);
        assert_eq!(RegClass::V.arch_count(), 8);
        assert_eq!(RegClass::Mask.arch_count(), 8);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::A(0).to_string(), "A0");
        assert_eq!(ArchReg::S(7).to_string(), "S7");
        assert_eq!(ArchReg::V(5).to_string(), "V5");
        assert_eq!(ArchReg::Mask(1).to_string(), "VM1");
    }

    #[test]
    fn round_trip_class_index() {
        for class in RegClass::ALL {
            for i in 0..class.arch_count() {
                let r = ArchReg::new(class, i);
                assert_eq!(r.class(), class);
                assert_eq!(r.index(), i);
                assert!(r.is_valid());
            }
        }
    }

    #[test]
    fn dense_index_is_dense_and_unique() {
        let mut seen = [false; 32];
        for class in RegClass::ALL {
            for i in 0..class.arch_count() {
                let d = ArchReg::new(class, i).dense_index();
                assert!(d < 32);
                assert!(!seen[d], "dense index {d} duplicated");
                seen[d] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = ArchReg::new(RegClass::V, 8);
    }

    #[test]
    fn scalar_classes() {
        assert!(RegClass::A.is_scalar());
        assert!(RegClass::S.is_scalar());
        assert!(!RegClass::V.is_scalar());
        assert!(!RegClass::Mask.is_scalar());
        assert!(ArchReg::V(0).is_vector());
        assert!(!ArchReg::S(0).is_vector());
    }
}
