//! Machine parameter blocks for the two simulated implementations.
//!
//! Every config block serialises to and from [`oov_proto::Json`] (the
//! `oov-serve` wire protocol carries configurations by value) and
//! carries a stable 64-bit [fingerprint](MachineConfig::fingerprint)
//! used for shard routing and result-cache keys.

use oov_proto::{fingerprint_bytes, Json};

use crate::LatencyModel;

/// Which machine a configuration describes (used in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// The in-order Convex C3400-like reference architecture.
    Reference,
    /// The out-of-order, register-renaming OOOVA.
    OutOfOrder,
}

/// Commit strategy of the OOOVA (paper §2.2 "Commit Strategy" and §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommitMode {
    /// Aggressive model: a vector instruction's reorder-buffer slot is
    /// marked ready to commit as soon as the instruction *begins*
    /// execution, so old physical registers are released early. Precise
    /// exceptions are impossible.
    #[default]
    Early,
    /// Conservative model enabling precise traps: instructions commit only
    /// after full completion, and stores execute only at the head of the
    /// reorder buffer.
    Late,
}

/// Dynamic load elimination configuration (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadElimMode {
    /// No register tagging.
    #[default]
    Off,
    /// Scalar load elimination only (SLE).
    Sle,
    /// Scalar and vector load elimination (SLE+VLE). Implies the modified
    /// pipeline that renames vector registers at the disambiguation stage.
    SleVle,
    /// SLE+VLE plus redundant (silent) store elimination — the extension
    /// the paper leaves as future work ("Relaxing compatibility could
    /// lead to removing some spill stores"): a store whose data register
    /// carries a valid tag exactly matching the target range would write
    /// back bytes memory already holds, and is elided.
    SleVleSse,
}

impl CommitMode {
    /// Wire/CLI name of the mode.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CommitMode::Early => "early",
            CommitMode::Late => "late",
        }
    }

    /// Parses a [`CommitMode::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "early" => Some(CommitMode::Early),
            "late" => Some(CommitMode::Late),
            _ => None,
        }
    }
}

impl LoadElimMode {
    /// Wire/CLI name of the mode (matching the `simulate` binary's
    /// `--elim` flag values).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LoadElimMode::Off => "off",
            LoadElimMode::Sle => "sle",
            LoadElimMode::SleVle => "sle+vle",
            LoadElimMode::SleVleSse => "sle+vle+sse",
        }
    }

    /// Parses a [`LoadElimMode::name`].
    #[must_use]
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "off" => Some(LoadElimMode::Off),
            "sle" => Some(LoadElimMode::Sle),
            "sle+vle" => Some(LoadElimMode::SleVle),
            "sle+vle+sse" => Some(LoadElimMode::SleVleSse),
            _ => None,
        }
    }
}

/// Scalar data-cache parameters.
///
/// Both machines cache *scalar* data only (the paper: data caches "have
/// not been put into widespread use in vector processors (except to
/// cache scalar data)"). The cache is write-through and no-write-
/// allocate, and stores invalidate a hit line — so register-spill
/// reloads (which always follow a store to the same slot) miss and
/// travel to main memory, preserving the paper's §6 premise that spill
/// loads are expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScalarCacheCfg {
    /// Total size in bytes (power of two).
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles (hits bypass the shared address bus).
    pub hit_latency: u32,
}

impl Default for ScalarCacheCfg {
    fn default() -> Self {
        ScalarCacheCfg {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            hit_latency: 2,
        }
    }
}

/// Parameters of the reference (in-order) machine.
///
/// Defaults follow paper §2.1: 8 vector registers of 128 elements paired
/// into 4 banks of 2 read + 1 write port, chaining between functional
/// units and to the store unit but *not* from memory loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RefConfig {
    /// Latency table.
    pub lat: LatencyModel,
    /// `true` to enforce the banked register-file port conflicts.
    pub banked_ports: bool,
    /// `true` to chain functional units to other functional units and to
    /// the store unit.
    pub chain_fu: bool,
    /// `true` to chain memory loads into functional units (the C3400 does
    /// *not*; kept as a knob for ablation studies).
    pub chain_loads: bool,
    /// Scalar data cache (`None` disables it — an ablation knob).
    pub scalar_cache: Option<ScalarCacheCfg>,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            lat: LatencyModel::reference(),
            banked_ports: true,
            chain_fu: true,
            chain_loads: false,
            scalar_cache: Some(ScalarCacheCfg::default()),
        }
    }
}

impl RefConfig {
    /// Reference machine with the given main-memory latency.
    #[must_use]
    pub fn with_memory_latency(mut self, cycles: u32) -> Self {
        self.lat.memory = cycles;
        self
    }
}

/// Parameters of the out-of-order machine (paper §2.2 "Machine Parameters").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OooConfig {
    /// Latency table.
    pub lat: LatencyModel,
    /// Physical vector registers (paper sweeps 9–64; ≥ 9 required since 8
    /// architectural mappings must always be live plus one in flight).
    pub phys_v_regs: usize,
    /// Physical A registers (paper: 64).
    pub phys_a_regs: usize,
    /// Physical S registers (paper: 64).
    pub phys_s_regs: usize,
    /// Physical mask registers (paper: 8).
    pub phys_mask_regs: usize,
    /// Slots in each of the four issue queues (paper: 16, and 128 for the
    /// "OOOVA-128" configuration).
    pub queue_slots: usize,
    /// Reorder-buffer entries (paper: 64).
    pub rob_entries: usize,
    /// Maximum instructions committed per cycle (paper: 4).
    pub commit_width: usize,
    /// Branch target buffer entries, 2-bit counters (paper: 64).
    pub btb_entries: usize,
    /// Return-stack depth (paper: 8).
    pub ras_depth: usize,
    /// Commit strategy.
    pub commit: CommitMode,
    /// Dynamic load elimination mode.
    pub load_elim: LoadElimMode,
    /// Scalar data cache (`None` disables it — an ablation knob).
    pub scalar_cache: Option<ScalarCacheCfg>,
    /// Engine knob (no timing effect): maximum number of consecutive
    /// front-end-only cycles the stage-graph scheduler runs in one
    /// fused fetch+dispatch burst before re-checking the back-end
    /// active set. `1` disables batching.
    pub frontend_batch: u32,
    /// Engine knob (no timing effect): `false` makes the event-driven
    /// stepper walk every stage on every progress cycle instead of
    /// only the active set — an ablation/debugging fallback.
    pub stage_masking: bool,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            lat: LatencyModel::ooo(),
            phys_v_regs: 16,
            phys_a_regs: 64,
            phys_s_regs: 64,
            phys_mask_regs: 8,
            queue_slots: 16,
            rob_entries: 64,
            commit_width: 4,
            btb_entries: 64,
            ras_depth: 8,
            commit: CommitMode::Early,
            load_elim: LoadElimMode::Off,
            scalar_cache: Some(ScalarCacheCfg::default()),
            frontend_batch: 64,
            stage_masking: true,
        }
    }
}

impl OooConfig {
    /// Sets the number of physical vector registers (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `n < 9`: with 8 architectural registers mapped at all
    /// times, at least one extra physical register is needed for the
    /// rename stage to make progress.
    #[must_use]
    pub fn with_phys_v_regs(mut self, n: usize) -> Self {
        assert!(n >= 9, "need at least 9 physical vector registers, got {n}");
        self.phys_v_regs = n;
        self
    }

    /// Sets the issue-queue depth (builder style).
    #[must_use]
    pub fn with_queue_slots(mut self, n: usize) -> Self {
        assert!(n >= 1, "queues need at least one slot");
        self.queue_slots = n;
        self
    }

    /// Sets the main-memory latency (builder style).
    #[must_use]
    pub fn with_memory_latency(mut self, cycles: u32) -> Self {
        self.lat.memory = cycles;
        self
    }

    /// Sets the commit mode (builder style).
    #[must_use]
    pub fn with_commit(mut self, mode: CommitMode) -> Self {
        self.commit = mode;
        self
    }

    /// Sets the load-elimination mode (builder style). Load elimination
    /// requires precise state, so `Sle`/`SleVle` force late commit.
    #[must_use]
    pub fn with_load_elim(mut self, mode: LoadElimMode) -> Self {
        self.load_elim = mode;
        if mode != LoadElimMode::Off {
            self.commit = CommitMode::Late;
        }
        self
    }

    /// Sets the fused front-end burst length (builder style). Engine
    /// knob only — results are bit-identical for every value.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero (`1` disables batching).
    #[must_use]
    pub fn with_frontend_batch(mut self, n: u32) -> Self {
        assert!(n >= 1, "front-end burst length must be at least 1");
        self.frontend_batch = n;
        self
    }

    /// Enables or disables active-set stage masking (builder style).
    /// Engine knob only — results are bit-identical either way.
    #[must_use]
    pub fn with_stage_masking(mut self, on: bool) -> Self {
        self.stage_masking = on;
        self
    }
}

impl ScalarCacheCfg {
    /// Encodes the cache parameters as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("size_bytes", self.size_bytes.into()),
            ("line_bytes", self.line_bytes.into()),
            ("hit_latency", self.hit_latency.into()),
        ])
    }

    /// Decodes the [`ScalarCacheCfg::to_json`] encoding, enforcing the
    /// bounds `ScalarCache::new` asserts (both sizes powers of two, at
    /// least one line) so a wire-supplied configuration can never
    /// panic the simulator.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing, malformed or out-of-range
    /// field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("scalar cache: bad or missing field `{name}`"))
        };
        let cfg = ScalarCacheCfg {
            size_bytes: field("size_bytes")?,
            line_bytes: field("line_bytes")?,
            hit_latency: u32::try_from(field("hit_latency")?)
                .map_err(|_| "scalar cache: hit_latency out of range".to_string())?,
        };
        if !cfg.size_bytes.is_power_of_two() || !cfg.line_bytes.is_power_of_two() {
            return Err("scalar cache: sizes must be powers of two".into());
        }
        if cfg.size_bytes < cfg.line_bytes {
            return Err("scalar cache: smaller than one line".into());
        }
        Ok(cfg)
    }
}

fn cache_to_json(cache: &Option<ScalarCacheCfg>) -> Json {
    cache.as_ref().map_or(Json::Null, ScalarCacheCfg::to_json)
}

fn cache_from_json(v: Option<&Json>) -> Result<Option<ScalarCacheCfg>, String> {
    match v {
        None | Some(Json::Null) => Ok(None),
        Some(obj) => ScalarCacheCfg::from_json(obj).map(Some),
    }
}

impl RefConfig {
    /// Encodes the configuration as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lat", self.lat.to_json()),
            ("banked_ports", self.banked_ports.into()),
            ("chain_fu", self.chain_fu.into()),
            ("chain_loads", self.chain_loads.into()),
            ("scalar_cache", cache_to_json(&self.scalar_cache)),
        ])
    }

    /// Decodes the [`RefConfig::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let flag = |name: &str| {
            v.get(name)
                .and_then(Json::as_bool)
                .ok_or_else(|| format!("ref config: bad or missing field `{name}`"))
        };
        Ok(RefConfig {
            lat: LatencyModel::from_json(
                v.get("lat")
                    .ok_or_else(|| "ref config: missing `lat`".to_string())?,
            )?,
            banked_ports: flag("banked_ports")?,
            chain_fu: flag("chain_fu")?,
            chain_loads: flag("chain_loads")?,
            scalar_cache: cache_from_json(v.get("scalar_cache"))?,
        })
    }
}

impl OooConfig {
    /// Encodes the configuration as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("lat", self.lat.to_json()),
            ("phys_v_regs", self.phys_v_regs.into()),
            ("phys_a_regs", self.phys_a_regs.into()),
            ("phys_s_regs", self.phys_s_regs.into()),
            ("phys_mask_regs", self.phys_mask_regs.into()),
            ("queue_slots", self.queue_slots.into()),
            ("rob_entries", self.rob_entries.into()),
            ("commit_width", self.commit_width.into()),
            ("btb_entries", self.btb_entries.into()),
            ("ras_depth", self.ras_depth.into()),
            ("commit", self.commit.name().into()),
            ("load_elim", self.load_elim.name().into()),
            ("scalar_cache", cache_to_json(&self.scalar_cache)),
        ])
    }

    /// Decodes the [`OooConfig::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field, or the
    /// structural-parameter validation that failed (the same bounds the
    /// builder methods assert).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let field = |name: &str| {
            v.get(name)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("ooo config: bad or missing field `{name}`"))
        };
        let commit_name = v
            .get("commit")
            .and_then(Json::as_str)
            .ok_or_else(|| "ooo config: bad or missing field `commit`".to_string())?;
        let elim_name = v
            .get("load_elim")
            .and_then(Json::as_str)
            .ok_or_else(|| "ooo config: bad or missing field `load_elim`".to_string())?;
        let cfg = OooConfig {
            lat: LatencyModel::from_json(
                v.get("lat")
                    .ok_or_else(|| "ooo config: missing `lat`".to_string())?,
            )?,
            phys_v_regs: field("phys_v_regs")?,
            phys_a_regs: field("phys_a_regs")?,
            phys_s_regs: field("phys_s_regs")?,
            phys_mask_regs: field("phys_mask_regs")?,
            queue_slots: field("queue_slots")?,
            rob_entries: field("rob_entries")?,
            commit_width: field("commit_width")?,
            btb_entries: field("btb_entries")?,
            ras_depth: field("ras_depth")?,
            commit: CommitMode::from_name(commit_name)
                .ok_or_else(|| format!("ooo config: unknown commit mode `{commit_name}`"))?,
            load_elim: LoadElimMode::from_name(elim_name)
                .ok_or_else(|| format!("ooo config: unknown load-elim mode `{elim_name}`"))?,
            scalar_cache: cache_from_json(v.get("scalar_cache"))?,
            // Engine knobs are deliberately absent from the wire
            // encoding: they cannot influence any simulation outcome
            // (the parity grid proves it), so including them would
            // split the serve result cache — whose fingerprint
            // contract is "equal iff every outcome-relevant field is
            // equal" — over bit-identical results. Wire-decoded
            // configurations always run the default engine.
            frontend_batch: OooConfig::default().frontend_batch,
            stage_masking: OooConfig::default().stage_masking,
        };
        if cfg.phys_v_regs < 9 || cfg.phys_a_regs < 9 || cfg.phys_s_regs < 9 {
            return Err(format!(
                "ooo config: each physical register file needs at least 9 registers \
                 (8 architectural mappings plus one in flight), got \
                 a={} s={} v={}",
                cfg.phys_a_regs, cfg.phys_s_regs, cfg.phys_v_regs
            ));
        }
        if cfg.queue_slots < 1 || cfg.rob_entries < 1 || cfg.commit_width < 1 {
            return Err("ooo config: queues, ROB and commit width need at least one slot".into());
        }
        if cfg.btb_entries < 1 {
            return Err("ooo config: the BTB needs at least one entry".into());
        }
        if cfg.load_elim != LoadElimMode::Off && cfg.commit != CommitMode::Late {
            return Err("ooo config: load elimination requires late commit".into());
        }
        Ok(cfg)
    }
}

/// Configuration for either simulated machine — the unit the `oov-serve`
/// wire protocol, shard router and result cache work in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineConfig {
    /// The in-order reference machine.
    Ref(RefConfig),
    /// The out-of-order OOOVA.
    Ooo(OooConfig),
}

impl MachineConfig {
    /// Which machine the configuration describes.
    #[must_use]
    pub fn kind(&self) -> MachineKind {
        match self {
            MachineConfig::Ref(_) => MachineKind::Reference,
            MachineConfig::Ooo(_) => MachineKind::OutOfOrder,
        }
    }

    /// Encodes the configuration, tagged with the machine kind.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            MachineConfig::Ref(c) => {
                Json::obj(vec![("machine", "ref".into()), ("cfg", c.to_json())])
            }
            MachineConfig::Ooo(c) => {
                Json::obj(vec![("machine", "ooo".into()), ("cfg", c.to_json())])
            }
        }
    }

    /// Decodes the [`MachineConfig::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let kind = v
            .get("machine")
            .and_then(Json::as_str)
            .ok_or_else(|| "machine config: bad or missing field `machine`".to_string())?;
        let cfg = v
            .get("cfg")
            .ok_or_else(|| "machine config: missing field `cfg`".to_string())?;
        match kind {
            "ref" => RefConfig::from_json(cfg).map(MachineConfig::Ref),
            "ooo" => OooConfig::from_json(cfg).map(MachineConfig::Ooo),
            other => Err(format!("machine config: unknown machine `{other}`")),
        }
    }

    /// Stable 64-bit fingerprint of the configuration: FNV-1a over the
    /// raw bytes of the canonical JSON encoding, so it is identical
    /// across processes, platforms and toolchains (`str`'s `Hash` impl
    /// appends an unspecified suffix; `DefaultHasher` is seeded per
    /// process — neither is stable). `oov-serve` routes requests to
    /// worker shards by this value and keys its result cache on a hash
    /// derived from it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        fingerprint_bytes(self.to_json().to_string().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OooConfig::default();
        assert_eq!(c.phys_a_regs, 64);
        assert_eq!(c.phys_s_regs, 64);
        assert_eq!(c.phys_mask_regs, 8);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.btb_entries, 64);
        assert_eq!(c.ras_depth, 8);
        assert_eq!(c.queue_slots, 16);
        assert_eq!(c.lat.vstartup, 0);
    }

    #[test]
    fn ref_defaults_match_paper() {
        let c = RefConfig::default();
        assert!(c.banked_ports);
        assert!(c.chain_fu);
        assert!(!c.chain_loads);
        assert_eq!(c.lat.vstartup, 1);
    }

    #[test]
    fn builders_compose() {
        let c = OooConfig::default()
            .with_phys_v_regs(32)
            .with_queue_slots(128)
            .with_memory_latency(100)
            .with_commit(CommitMode::Late);
        assert_eq!(c.phys_v_regs, 32);
        assert_eq!(c.queue_slots, 128);
        assert_eq!(c.lat.memory, 100);
        assert_eq!(c.commit, CommitMode::Late);
    }

    #[test]
    fn engine_knobs_default_and_compose() {
        let c = OooConfig::default();
        assert_eq!(c.frontend_batch, 64);
        assert!(c.stage_masking);
        let c = c.with_frontend_batch(1).with_stage_masking(false);
        assert_eq!(c.frontend_batch, 1);
        assert!(!c.stage_masking);
    }

    #[test]
    fn engine_knobs_do_not_reach_the_wire_or_the_fingerprint() {
        // The knobs cannot change results, so two configurations
        // differing only in them must cache and route as one.
        let a = MachineConfig::Ooo(OooConfig::default());
        let b = MachineConfig::Ooo(
            OooConfig::default()
                .with_frontend_batch(1)
                .with_stage_masking(false),
        );
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.to_json().to_string(), b.to_json().to_string());
        // Decoding normalises to the default engine.
        let decoded = MachineConfig::from_json(&b.to_json()).unwrap();
        assert_eq!(decoded, a);
    }

    #[test]
    fn load_elim_forces_late_commit() {
        let c = OooConfig::default().with_load_elim(LoadElimMode::SleVle);
        assert_eq!(c.commit, CommitMode::Late);
    }

    #[test]
    #[should_panic(expected = "at least 9")]
    fn too_few_phys_regs_rejected() {
        let _ = OooConfig::default().with_phys_v_regs(8);
    }

    #[test]
    fn mode_names_round_trip() {
        for m in [CommitMode::Early, CommitMode::Late] {
            assert_eq!(CommitMode::from_name(m.name()), Some(m));
        }
        for m in [
            LoadElimMode::Off,
            LoadElimMode::Sle,
            LoadElimMode::SleVle,
            LoadElimMode::SleVleSse,
        ] {
            assert_eq!(LoadElimMode::from_name(m.name()), Some(m));
        }
        assert_eq!(CommitMode::from_name("nope"), None);
        assert_eq!(LoadElimMode::from_name("nope"), None);
    }

    #[test]
    fn machine_config_json_round_trips() {
        let ooo = MachineConfig::Ooo(
            OooConfig::default()
                .with_phys_v_regs(32)
                .with_queue_slots(128)
                .with_memory_latency(100)
                .with_load_elim(LoadElimMode::SleVle),
        );
        let rf = MachineConfig::Ref(RefConfig {
            scalar_cache: None,
            ..RefConfig::default().with_memory_latency(20)
        });
        for cfg in [ooo, rf] {
            let v = cfg.to_json();
            assert_eq!(MachineConfig::from_json(&v).unwrap(), cfg);
            // The encoding survives a textual round trip too (the wire
            // sends it as a line of JSON).
            let reparsed = Json::parse(&v.to_string()).unwrap();
            assert_eq!(MachineConfig::from_json(&reparsed).unwrap(), cfg);
        }
    }

    #[test]
    fn from_json_validates_structural_bounds() {
        let mut v = OooConfig::default().to_json();
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "phys_v_regs" {
                    *val = 4u64.into();
                }
            }
        }
        let err = OooConfig::from_json(&v).unwrap_err();
        assert!(err.contains("at least 9"), "{err}");
    }

    #[test]
    fn from_json_rejects_wire_reachable_panic_values() {
        // Each of these would assert/divide-by-zero inside the
        // simulator if it got past decode.
        let poison = |field: &str, value: Json| {
            let mut v = OooConfig::default().to_json();
            if let Json::Obj(pairs) = &mut v {
                for (k, val) in pairs.iter_mut() {
                    if k == field {
                        *val = value.clone();
                    }
                }
            }
            OooConfig::from_json(&v)
        };
        assert!(poison("btb_entries", 0u64.into()).is_err());
        assert!(poison("phys_a_regs", 4u64.into()).is_err());
        assert!(poison("phys_s_regs", 0u64.into()).is_err());
        assert!(poison(
            "scalar_cache",
            Json::obj(vec![
                ("size_bytes", 100u64.into()), // not a power of two
                ("line_bytes", 32u64.into()),
                ("hit_latency", 2u64.into()),
            ]),
        )
        .is_err());
        assert!(poison(
            "scalar_cache",
            Json::obj(vec![
                ("size_bytes", 16u64.into()), // smaller than one line
                ("line_bytes", 32u64.into()),
                ("hit_latency", 2u64.into()),
            ]),
        )
        .is_err());
    }

    #[test]
    fn from_json_rejects_elim_without_late_commit() {
        let mut v = OooConfig::default()
            .with_load_elim(LoadElimMode::Sle)
            .to_json();
        if let Json::Obj(pairs) = &mut v {
            for (k, val) in pairs.iter_mut() {
                if k == "commit" {
                    *val = "early".into();
                }
            }
        }
        assert!(OooConfig::from_json(&v).is_err());
    }

    #[test]
    fn fingerprints_are_stable_and_config_sensitive() {
        let a = MachineConfig::Ooo(OooConfig::default());
        let b = MachineConfig::Ooo(OooConfig::default().with_queue_slots(128));
        let c = MachineConfig::Ref(RefConfig::default());
        assert_eq!(a.fingerprint(), a.fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
    }
}
