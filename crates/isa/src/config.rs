//! Machine parameter blocks for the two simulated implementations.

use crate::LatencyModel;

/// Which machine a configuration describes (used in reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// The in-order Convex C3400-like reference architecture.
    Reference,
    /// The out-of-order, register-renaming OOOVA.
    OutOfOrder,
}

/// Commit strategy of the OOOVA (paper §2.2 "Commit Strategy" and §5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CommitMode {
    /// Aggressive model: a vector instruction's reorder-buffer slot is
    /// marked ready to commit as soon as the instruction *begins*
    /// execution, so old physical registers are released early. Precise
    /// exceptions are impossible.
    #[default]
    Early,
    /// Conservative model enabling precise traps: instructions commit only
    /// after full completion, and stores execute only at the head of the
    /// reorder buffer.
    Late,
}

/// Dynamic load elimination configuration (paper §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LoadElimMode {
    /// No register tagging.
    #[default]
    Off,
    /// Scalar load elimination only (SLE).
    Sle,
    /// Scalar and vector load elimination (SLE+VLE). Implies the modified
    /// pipeline that renames vector registers at the disambiguation stage.
    SleVle,
    /// SLE+VLE plus redundant (silent) store elimination — the extension
    /// the paper leaves as future work ("Relaxing compatibility could
    /// lead to removing some spill stores"): a store whose data register
    /// carries a valid tag exactly matching the target range would write
    /// back bytes memory already holds, and is elided.
    SleVleSse,
}

/// Scalar data-cache parameters.
///
/// Both machines cache *scalar* data only (the paper: data caches "have
/// not been put into widespread use in vector processors (except to
/// cache scalar data)"). The cache is write-through and no-write-
/// allocate, and stores invalidate a hit line — so register-spill
/// reloads (which always follow a store to the same slot) miss and
/// travel to main memory, preserving the paper's §6 premise that spill
/// loads are expensive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalarCacheCfg {
    /// Total size in bytes (power of two).
    pub size_bytes: u64,
    /// Line size in bytes (power of two).
    pub line_bytes: u64,
    /// Hit latency in cycles (hits bypass the shared address bus).
    pub hit_latency: u32,
}

impl Default for ScalarCacheCfg {
    fn default() -> Self {
        ScalarCacheCfg {
            size_bytes: 16 * 1024,
            line_bytes: 32,
            hit_latency: 2,
        }
    }
}

/// Parameters of the reference (in-order) machine.
///
/// Defaults follow paper §2.1: 8 vector registers of 128 elements paired
/// into 4 banks of 2 read + 1 write port, chaining between functional
/// units and to the store unit but *not* from memory loads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RefConfig {
    /// Latency table.
    pub lat: LatencyModel,
    /// `true` to enforce the banked register-file port conflicts.
    pub banked_ports: bool,
    /// `true` to chain functional units to other functional units and to
    /// the store unit.
    pub chain_fu: bool,
    /// `true` to chain memory loads into functional units (the C3400 does
    /// *not*; kept as a knob for ablation studies).
    pub chain_loads: bool,
    /// Scalar data cache (`None` disables it — an ablation knob).
    pub scalar_cache: Option<ScalarCacheCfg>,
}

impl Default for RefConfig {
    fn default() -> Self {
        RefConfig {
            lat: LatencyModel::reference(),
            banked_ports: true,
            chain_fu: true,
            chain_loads: false,
            scalar_cache: Some(ScalarCacheCfg::default()),
        }
    }
}

impl RefConfig {
    /// Reference machine with the given main-memory latency.
    #[must_use]
    pub fn with_memory_latency(mut self, cycles: u32) -> Self {
        self.lat.memory = cycles;
        self
    }
}

/// Parameters of the out-of-order machine (paper §2.2 "Machine Parameters").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OooConfig {
    /// Latency table.
    pub lat: LatencyModel,
    /// Physical vector registers (paper sweeps 9–64; ≥ 9 required since 8
    /// architectural mappings must always be live plus one in flight).
    pub phys_v_regs: usize,
    /// Physical A registers (paper: 64).
    pub phys_a_regs: usize,
    /// Physical S registers (paper: 64).
    pub phys_s_regs: usize,
    /// Physical mask registers (paper: 8).
    pub phys_mask_regs: usize,
    /// Slots in each of the four issue queues (paper: 16, and 128 for the
    /// "OOOVA-128" configuration).
    pub queue_slots: usize,
    /// Reorder-buffer entries (paper: 64).
    pub rob_entries: usize,
    /// Maximum instructions committed per cycle (paper: 4).
    pub commit_width: usize,
    /// Branch target buffer entries, 2-bit counters (paper: 64).
    pub btb_entries: usize,
    /// Return-stack depth (paper: 8).
    pub ras_depth: usize,
    /// Commit strategy.
    pub commit: CommitMode,
    /// Dynamic load elimination mode.
    pub load_elim: LoadElimMode,
    /// Scalar data cache (`None` disables it — an ablation knob).
    pub scalar_cache: Option<ScalarCacheCfg>,
}

impl Default for OooConfig {
    fn default() -> Self {
        OooConfig {
            lat: LatencyModel::ooo(),
            phys_v_regs: 16,
            phys_a_regs: 64,
            phys_s_regs: 64,
            phys_mask_regs: 8,
            queue_slots: 16,
            rob_entries: 64,
            commit_width: 4,
            btb_entries: 64,
            ras_depth: 8,
            commit: CommitMode::Early,
            load_elim: LoadElimMode::Off,
            scalar_cache: Some(ScalarCacheCfg::default()),
        }
    }
}

impl OooConfig {
    /// Sets the number of physical vector registers (builder style).
    ///
    /// # Panics
    ///
    /// Panics if `n < 9`: with 8 architectural registers mapped at all
    /// times, at least one extra physical register is needed for the
    /// rename stage to make progress.
    #[must_use]
    pub fn with_phys_v_regs(mut self, n: usize) -> Self {
        assert!(n >= 9, "need at least 9 physical vector registers, got {n}");
        self.phys_v_regs = n;
        self
    }

    /// Sets the issue-queue depth (builder style).
    #[must_use]
    pub fn with_queue_slots(mut self, n: usize) -> Self {
        assert!(n >= 1, "queues need at least one slot");
        self.queue_slots = n;
        self
    }

    /// Sets the main-memory latency (builder style).
    #[must_use]
    pub fn with_memory_latency(mut self, cycles: u32) -> Self {
        self.lat.memory = cycles;
        self
    }

    /// Sets the commit mode (builder style).
    #[must_use]
    pub fn with_commit(mut self, mode: CommitMode) -> Self {
        self.commit = mode;
        self
    }

    /// Sets the load-elimination mode (builder style). Load elimination
    /// requires precise state, so `Sle`/`SleVle` force late commit.
    #[must_use]
    pub fn with_load_elim(mut self, mode: LoadElimMode) -> Self {
        self.load_elim = mode;
        if mode != LoadElimMode::Off {
            self.commit = CommitMode::Late;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = OooConfig::default();
        assert_eq!(c.phys_a_regs, 64);
        assert_eq!(c.phys_s_regs, 64);
        assert_eq!(c.phys_mask_regs, 8);
        assert_eq!(c.rob_entries, 64);
        assert_eq!(c.commit_width, 4);
        assert_eq!(c.btb_entries, 64);
        assert_eq!(c.ras_depth, 8);
        assert_eq!(c.queue_slots, 16);
        assert_eq!(c.lat.vstartup, 0);
    }

    #[test]
    fn ref_defaults_match_paper() {
        let c = RefConfig::default();
        assert!(c.banked_ports);
        assert!(c.chain_fu);
        assert!(!c.chain_loads);
        assert_eq!(c.lat.vstartup, 1);
    }

    #[test]
    fn builders_compose() {
        let c = OooConfig::default()
            .with_phys_v_regs(32)
            .with_queue_slots(128)
            .with_memory_latency(100)
            .with_commit(CommitMode::Late);
        assert_eq!(c.phys_v_regs, 32);
        assert_eq!(c.queue_slots, 128);
        assert_eq!(c.lat.memory, 100);
        assert_eq!(c.commit, CommitMode::Late);
    }

    #[test]
    fn load_elim_forces_late_commit() {
        let c = OooConfig::default().with_load_elim(LoadElimMode::SleVle);
        assert_eq!(c.commit, CommitMode::Late);
    }

    #[test]
    #[should_panic(expected = "at least 9")]
    fn too_few_phys_regs_rejected() {
        let _ = OooConfig::default().with_phys_v_regs(8);
    }
}
