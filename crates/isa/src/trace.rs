//! Dynamic instruction traces and their summary statistics.

use std::fmt;

use crate::{FuClass, Instruction, Opcode};

/// Summary statistics of a trace — the raw material of the paper's Table 2
/// (operation counts) and Table 3 (spill traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Scalar instructions (everything that is not a vector instruction).
    pub scalar_insts: u64,
    /// Vector instructions.
    pub vector_insts: u64,
    /// Element operations performed by vector instructions.
    pub vector_ops: u64,
    /// Words moved by vector loads.
    pub vload_words: u64,
    /// Words moved by vector loads marked as spill code.
    pub vload_spill_words: u64,
    /// Words moved by vector stores.
    pub vstore_words: u64,
    /// Words moved by vector stores marked as spill code.
    pub vstore_spill_words: u64,
    /// Scalar loads.
    pub sload_count: u64,
    /// Scalar loads marked as spill code.
    pub sload_spill_count: u64,
    /// Scalar stores.
    pub sstore_count: u64,
    /// Scalar stores marked as spill code.
    pub sstore_spill_count: u64,
    /// Conditional branches.
    pub branches: u64,
}

impl TraceStats {
    /// Accumulates one instruction into the statistics.
    pub fn record(&mut self, inst: &Instruction) {
        if inst.op.is_vector() {
            self.vector_insts += 1;
            self.vector_ops += inst.ops();
        } else {
            self.scalar_insts += 1;
        }
        match inst.op {
            Opcode::VLoad | Opcode::VGather => {
                self.vload_words += inst.words_moved();
                if inst.is_spill {
                    self.vload_spill_words += inst.words_moved();
                }
            }
            Opcode::VStore | Opcode::VScatter => {
                self.vstore_words += inst.words_moved();
                if inst.is_spill {
                    self.vstore_spill_words += inst.words_moved();
                }
            }
            Opcode::SLoad => {
                self.sload_count += 1;
                if inst.is_spill {
                    self.sload_spill_count += 1;
                }
            }
            Opcode::SStore => {
                self.sstore_count += 1;
                if inst.is_spill {
                    self.sstore_spill_count += 1;
                }
            }
            Opcode::Branch => self.branches += 1,
            _ => {}
        }
    }

    /// Total instructions.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.scalar_insts + self.vector_insts
    }

    /// Percentage of vectorization, as defined under the paper's Table 2:
    /// vector operations divided by (scalar instructions + vector
    /// operations).
    #[must_use]
    pub fn vectorization_pct(&self) -> f64 {
        let denom = self.scalar_insts + self.vector_ops;
        if denom == 0 {
            return 0.0;
        }
        100.0 * self.vector_ops as f64 / denom as f64
    }

    /// Average vector length: vector operations / vector instructions.
    #[must_use]
    pub fn avg_vl(&self) -> f64 {
        if self.vector_insts == 0 {
            return 0.0;
        }
        self.vector_ops as f64 / self.vector_insts as f64
    }

    /// Total words of memory traffic (vector words + scalar accesses).
    #[must_use]
    pub fn total_traffic_words(&self) -> u64 {
        self.vload_words + self.vstore_words + self.sload_count + self.sstore_count
    }

    /// Fraction of the memory traffic that is spill traffic.
    #[must_use]
    pub fn spill_traffic_fraction(&self) -> f64 {
        let total = self.total_traffic_words();
        if total == 0 {
            return 0.0;
        }
        let spill = self.vload_spill_words
            + self.vstore_spill_words
            + self.sload_spill_count
            + self.sstore_spill_count;
        spill as f64 / total as f64
    }
}

impl fmt::Display for TraceStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} insts ({} scalar, {} vector), {} vector ops, {:.1}% vectorized, avg VL {:.0}",
            self.total_insts(),
            self.scalar_insts,
            self.vector_insts,
            self.vector_ops,
            self.vectorization_pct(),
            self.avg_vl()
        )
    }
}

/// A dynamic instruction stream for one program, plus its statistics.
///
/// Traces play the role of the Dixie-generated traces of the paper: the
/// simulators consume them instruction by instruction.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    name: String,
    insts: Vec<Instruction>,
    stats: TraceStats,
}

impl Trace {
    /// Creates an empty trace for program `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: name.into(),
            insts: Vec::new(),
            stats: TraceStats::default(),
        }
    }

    /// The program name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends an instruction, updating the statistics.
    pub fn push(&mut self, inst: Instruction) {
        self.stats.record(&inst);
        self.insts.push(inst);
    }

    /// The accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &TraceStats {
        &self.stats
    }

    /// The instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.insts
    }

    /// Number of dynamic instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the trace holds no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterator over the instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.insts.iter()
    }

    /// Total busy cycles each vector unit class would need, ignoring all
    /// dependences — the inputs to the paper's IDEAL bound (§4.2): MEM
    /// work, FU2-only work (mul/div/sqrt) and total FU work.
    ///
    /// Returns `(mem_cycles, fu2_only_cycles, total_fu_cycles)` counting
    /// one cycle per element.
    #[must_use]
    pub fn unit_work(&self) -> (u64, u64, u64) {
        let mut mem = 0u64;
        let mut fu2_only = 0u64;
        let mut fu_total = 0u64;
        for i in &self.insts {
            match i.op.fu_class() {
                FuClass::Mem => mem += i.ops(),
                FuClass::VecFu2Only => {
                    fu2_only += i.ops();
                    fu_total += i.ops();
                }
                FuClass::VecAny => fu_total += i.ops(),
                FuClass::Scalar => {}
            }
        }
        (mem, fu2_only, fu_total)
    }

    /// The paper's IDEAL cycle count: execution limited only by the most
    /// saturated vector resource (§4.2). The two FUs can split the
    /// FU-any work, but FU2-only work cannot migrate.
    #[must_use]
    pub fn ideal_cycles(&self) -> u64 {
        let (mem, fu2_only, fu_total) = self.unit_work();
        let balanced = fu_total.div_ceil(2);
        mem.max(fu2_only).max(balanced).max(1)
    }
}

impl FromIterator<Instruction> for Trace {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let mut t = Trace::new("anonymous");
        for i in iter {
            t.push(i);
        }
        t
    }
}

impl Extend<Instruction> for Trace {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        for i in iter {
            self.push(i);
        }
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ArchReg, MemRef};

    fn sample_trace() -> Trace {
        let mut t = Trace::new("t");
        let m = MemRef::strided(0x1000, 8, 64);
        t.push(Instruction::load(
            Opcode::VLoad,
            ArchReg::V(0),
            &[ArchReg::A(0)],
            m,
            64,
        ));
        t.push(Instruction::vector(
            Opcode::VMul,
            ArchReg::V(1),
            &[ArchReg::V(0)],
            64,
            1,
        ));
        t.push(Instruction::scalar(
            Opcode::SAdd,
            ArchReg::S(0),
            &[ArchReg::S(1)],
        ));
        t.push(
            Instruction::store(
                Opcode::VStore,
                &[ArchReg::V(1), ArchReg::A(1)],
                MemRef::strided(0x8000, 8, 64),
                64,
            )
            .spill(),
        );
        t
    }

    #[test]
    fn stats_accumulate() {
        let t = sample_trace();
        let s = t.stats();
        assert_eq!(s.scalar_insts, 1);
        assert_eq!(s.vector_insts, 3);
        assert_eq!(s.vector_ops, 3 * 64);
        assert_eq!(s.vload_words, 64);
        assert_eq!(s.vstore_words, 64);
        assert_eq!(s.vstore_spill_words, 64);
        assert_eq!(s.vload_spill_words, 0);
    }

    #[test]
    fn vectorization_formula_matches_paper() {
        // Table 2 footnote: %vect = vector ops / (scalar insts + vector ops).
        let t = sample_trace();
        let s = t.stats();
        let expect = 100.0 * 192.0 / (1.0 + 192.0);
        assert!((s.vectorization_pct() - expect).abs() < 1e-9);
        assert!((s.avg_vl() - 64.0).abs() < 1e-9);
    }

    #[test]
    fn unit_work_partition() {
        let t = sample_trace();
        let (mem, fu2, fu_total) = t.unit_work();
        assert_eq!(mem, 128); // load + store
        assert_eq!(fu2, 64); // the multiply
        assert_eq!(fu_total, 64);
    }

    #[test]
    fn ideal_is_max_of_unit_bounds() {
        let t = sample_trace();
        // mem=128, fu2_only=64, balanced=32 → ideal = 128.
        assert_eq!(t.ideal_cycles(), 128);
    }

    #[test]
    fn ideal_respects_fu2_only_work() {
        let mut t = Trace::new("mul-heavy");
        for _ in 0..4 {
            t.push(Instruction::vector(
                Opcode::VMul,
                ArchReg::V(1),
                &[ArchReg::V(0)],
                128,
                1,
            ));
        }
        // All work is FU2-only: balancing over two units must not apply.
        assert_eq!(t.ideal_cycles(), 512);
    }

    #[test]
    fn collect_and_extend() {
        let t = sample_trace();
        let t2: Trace = t.iter().copied().collect();
        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.stats(), t.stats());
        let mut t3 = Trace::new("x");
        t3.extend(t.iter().copied());
        assert_eq!(t3.stats().vector_ops, t.stats().vector_ops);
    }

    #[test]
    fn spill_fraction() {
        let t = sample_trace();
        // 64 spill words out of 128 total words + 0 scalar accesses.
        assert!((t.stats().spill_traffic_fraction() - 0.5).abs() < 1e-9);
    }
}
