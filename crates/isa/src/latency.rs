//! Functional-unit latencies — the reconstruction of the paper's Table 1.
//!
//! The scanned Table 1 is partially illegible; the values below are
//! reconstructed from the legible entries ("write x-bar … 2", "34/9",
//! "(*) 0 in OOOVA, 1 in REF") and the C3400-family literature, and are
//! documented in `DESIGN.md` §1. All units are fully pipelined.

use crate::{LatClass, Opcode};

/// Latency parameters (in cycles) of the simulated machines.
///
/// A vector instruction started at cycle *t₀* reads source element *i* at
/// *t₀ + i* through the read crossbar and writes result element *i* at
/// *t₀ + first_result_latency + i*; the unit is occupied for
/// `startup + vl` cycles.
///
/// # Example
///
/// ```
/// use oov_isa::{LatencyModel, Opcode};
///
/// let lat = LatencyModel::default();
/// assert!(lat.first_result(Opcode::VDiv) > lat.first_result(Opcode::VAdd));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LatencyModel {
    /// Read-crossbar traversal (register file → functional unit).
    pub read_xbar: u32,
    /// Write-crossbar traversal (functional unit → register file).
    pub write_xbar: u32,
    /// Vector startup overhead before the first element enters the pipe
    /// (1 on the reference machine, 0 on the OOOVA — the `(*)` note of
    /// Table 1).
    pub vstartup: u32,
    /// Scalar add/logic/shift/compare execution latency.
    pub scalar_simple: u32,
    /// Vector add/logic/shift/compare pipeline depth.
    pub vector_simple: u32,
    /// Multiply pipeline depth (scalar and vector).
    pub mul: u32,
    /// Divide / square-root latency (scalar and vector).
    pub div_sqrt: u32,
    /// Main memory latency: cycles from the address issuing on the bus to
    /// the first datum returning (paper default: 50; varied in §4.3).
    pub memory: u32,
    /// Branch resolution latency on the scalar unit.
    pub branch: u32,
    /// Front-end refill penalty after a mispredicted branch.
    pub mispredict_penalty: u32,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            read_xbar: 1,
            write_xbar: 2,
            vstartup: 1, // reference machine; `ooo()` sets 0
            scalar_simple: 2,
            vector_simple: 4,
            mul: 9,
            div_sqrt: 34,
            memory: 50,
            branch: 1,
            mispredict_penalty: 4,
        }
    }
}

impl LatencyModel {
    /// Latency model for the reference (in-order) machine.
    #[must_use]
    pub fn reference() -> Self {
        Self::default()
    }

    /// Latency model for the OOOVA: identical except the vector startup
    /// is absorbed by the decoupled issue queues (Table 1 note `(*)`).
    #[must_use]
    pub fn ooo() -> Self {
        LatencyModel {
            vstartup: 0,
            ..Self::default()
        }
    }

    /// Sets the main-memory latency (builder style).
    #[must_use]
    pub fn with_memory_latency(mut self, cycles: u32) -> Self {
        self.memory = cycles;
        self
    }

    /// Raw execution latency of the opcode's latency class, excluding
    /// crossbar traversal and memory.
    #[must_use]
    pub fn exec(&self, op: Opcode) -> u32 {
        match op.lat_class() {
            LatClass::Simple => {
                if op.is_vector() {
                    self.vector_simple
                } else {
                    self.scalar_simple
                }
            }
            LatClass::Mul => self.mul,
            LatClass::DivSqrt => self.div_sqrt,
            LatClass::Mem => self.memory,
            LatClass::Branch => self.branch,
        }
    }

    /// Cycles from an instruction starting execution to its *first* result
    /// element being architecturally visible (readable by a chained
    /// consumer): crossbar in, execute, crossbar out.
    ///
    /// For loads this is the full memory latency (the address still has to
    /// traverse no crossbar; data returns straight into the register file).
    #[must_use]
    pub fn first_result(&self, op: Opcode) -> u32 {
        if op.is_mem() {
            self.memory
        } else if op.is_vector() {
            self.read_xbar + self.exec(op) + self.write_xbar
        } else {
            self.exec(op)
        }
    }

    /// Cycles a vector unit is occupied by one instruction of length `vl`.
    #[must_use]
    pub fn occupancy(&self, vl: u16) -> u64 {
        u64::from(self.vstartup) + u64::from(vl)
    }

    /// Field names and values in declaration order — the canonical
    /// form shared by the JSON encoding and the config fingerprint.
    #[must_use]
    pub fn fields(&self) -> [(&'static str, u32); 10] {
        [
            ("read_xbar", self.read_xbar),
            ("write_xbar", self.write_xbar),
            ("vstartup", self.vstartup),
            ("scalar_simple", self.scalar_simple),
            ("vector_simple", self.vector_simple),
            ("mul", self.mul),
            ("div_sqrt", self.div_sqrt),
            ("memory", self.memory),
            ("branch", self.branch),
            ("mispredict_penalty", self.mispredict_penalty),
        ]
    }

    /// Encodes the model as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> oov_proto::Json {
        oov_proto::Json::Obj(
            self.fields()
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.into()))
                .collect(),
        )
    }

    /// Decodes a model from the [`LatencyModel::to_json`] encoding.
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or malformed field.
    pub fn from_json(v: &oov_proto::Json) -> Result<Self, String> {
        let field = |name: &str| -> Result<u32, String> {
            v.get(name)
                .and_then(oov_proto::Json::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| format!("latency model: bad or missing field `{name}`"))
        };
        Ok(LatencyModel {
            read_xbar: field("read_xbar")?,
            write_xbar: field("write_xbar")?,
            vstartup: field("vstartup")?,
            scalar_simple: field("scalar_simple")?,
            vector_simple: field("vector_simple")?,
            mul: field("mul")?,
            div_sqrt: field("div_sqrt")?,
            memory: field("memory")?,
            branch: field("branch")?,
            mispredict_penalty: field("mispredict_penalty")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_design_doc() {
        let l = LatencyModel::default();
        assert_eq!(l.read_xbar, 1);
        assert_eq!(l.write_xbar, 2);
        assert_eq!(l.vstartup, 1);
        assert_eq!(l.mul, 9);
        assert_eq!(l.div_sqrt, 34);
        assert_eq!(l.memory, 50);
    }

    #[test]
    fn ooo_removes_startup_only() {
        let r = LatencyModel::reference();
        let o = LatencyModel::ooo();
        assert_eq!(o.vstartup, 0);
        assert_eq!(
            LatencyModel {
                vstartup: r.vstartup,
                ..o
            },
            r
        );
    }

    #[test]
    fn first_result_ordering() {
        let l = LatencyModel::default();
        assert!(l.first_result(Opcode::VAdd) < l.first_result(Opcode::VMul));
        assert!(l.first_result(Opcode::VMul) < l.first_result(Opcode::VDiv));
        assert_eq!(l.first_result(Opcode::VLoad), 50);
        assert_eq!(l.first_result(Opcode::SAdd), 2);
    }

    #[test]
    fn occupancy_includes_startup() {
        let r = LatencyModel::reference();
        let o = LatencyModel::ooo();
        assert_eq!(r.occupancy(128), 129);
        assert_eq!(o.occupancy(128), 128);
    }

    #[test]
    fn json_round_trip() {
        let l = LatencyModel::ooo().with_memory_latency(100);
        let v = l.to_json();
        assert_eq!(LatencyModel::from_json(&v).unwrap(), l);
        assert!(LatencyModel::from_json(&oov_proto::Json::Null).is_err());
    }

    #[test]
    fn memory_latency_override() {
        let l = LatencyModel::ooo().with_memory_latency(100);
        assert_eq!(l.first_result(Opcode::VLoad), 100);
        assert_eq!(l.exec(Opcode::SLoad), 100);
    }
}
