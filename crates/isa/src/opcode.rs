//! Instruction opcodes and their structural properties.

use std::fmt;

/// Functional-unit class an instruction executes on.
///
/// The reference machine (paper §2.1) has two vector computation units and
/// one memory unit: *"The FU2 unit is a general purpose arithmetic unit
/// capable of executing all vector instructions. The FU1 unit is a
/// restricted functional unit that executes all vector instructions
/// **except** multiplication, division and square root."*
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuClass {
    /// Scalar unit (A/S computation, branches, VL/VS updates).
    Scalar,
    /// Vector computation executable on either FU1 or FU2.
    VecAny,
    /// Vector computation executable on FU2 only (mul/div/sqrt).
    VecFu2Only,
    /// Memory unit (all loads and stores, scalar and vector).
    Mem,
}

/// Latency class used to look an instruction up in the [`crate::LatencyModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LatClass {
    /// Add/subtract/compare/logic/shift/move class.
    Simple,
    /// Multiply class.
    Mul,
    /// Divide / square-root class.
    DivSqrt,
    /// Memory access (latency comes from the memory model).
    Mem,
    /// Control transfer.
    Branch,
}

/// The instruction repertoire of the traced ISA.
///
/// This is a distillation of the Convex C3400 instruction set down to the
/// classes that matter for the paper's experiments: what unit an
/// instruction occupies, for how long, which registers it touches and what
/// memory range it covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    // ---- scalar unit -------------------------------------------------
    /// Scalar integer/address add-class op (covers add/sub/cmp/logical on A regs).
    SAddA,
    /// Scalar floating add-class op on S registers.
    SAdd,
    /// Scalar multiply.
    SMul,
    /// Scalar divide / square root.
    SDiv,
    /// Scalar move / convert (register to register).
    SMove,
    /// Load immediate / address formation (no memory access).
    SLui,
    /// Set the vector-length control register from a scalar.
    SetVl,
    /// Set the vector-stride control register from a scalar.
    SetVs,
    /// Conditional branch (resolved on the scalar unit).
    Branch,
    /// Unconditional jump.
    Jump,
    /// Subroutine call (pushes the return stack).
    Call,
    /// Subroutine return (pops the return stack).
    Ret,

    // ---- memory unit --------------------------------------------------
    /// Scalar load (A or S destination).
    SLoad,
    /// Scalar store.
    SStore,
    /// Unit- or constant-stride vector load.
    VLoad,
    /// Unit- or constant-stride vector store.
    VStore,
    /// Indexed vector load (gather).
    VGather,
    /// Indexed vector store (scatter).
    VScatter,

    // ---- vector computation --------------------------------------------
    /// Vector add/subtract (FU1 or FU2).
    VAdd,
    /// Vector logical op (FU1 or FU2).
    VLogic,
    /// Vector shift (FU1 or FU2).
    VShift,
    /// Vector compare, writes a mask register (FU1 or FU2).
    VCmp,
    /// Vector merge under mask (FU1 or FU2).
    VMerge,
    /// Vector reduction to a scalar (e.g. sum); occupies FU1/FU2.
    VReduce,
    /// Vector multiply (FU2 only).
    VMul,
    /// Vector divide (FU2 only).
    VDiv,
    /// Vector square root (FU2 only).
    VSqrt,
    /// Mask-register logical operation (FU1 or FU2, mask length).
    VMaskOp,
}

impl Opcode {
    /// All opcodes, for exhaustive iteration in tests.
    pub const ALL: [Opcode; 28] = [
        Opcode::SAddA,
        Opcode::SAdd,
        Opcode::SMul,
        Opcode::SDiv,
        Opcode::SMove,
        Opcode::SLui,
        Opcode::SetVl,
        Opcode::SetVs,
        Opcode::Branch,
        Opcode::Jump,
        Opcode::Call,
        Opcode::Ret,
        Opcode::SLoad,
        Opcode::SStore,
        Opcode::VLoad,
        Opcode::VStore,
        Opcode::VGather,
        Opcode::VScatter,
        Opcode::VAdd,
        Opcode::VLogic,
        Opcode::VShift,
        Opcode::VCmp,
        Opcode::VMerge,
        Opcode::VReduce,
        Opcode::VMul,
        Opcode::VDiv,
        Opcode::VSqrt,
        Opcode::VMaskOp,
    ];

    /// Functional unit class this opcode executes on.
    #[must_use]
    pub fn fu_class(self) -> FuClass {
        use Opcode::*;
        match self {
            SAddA | SAdd | SMul | SDiv | SMove | SLui | SetVl | SetVs | Branch | Jump | Call
            | Ret => FuClass::Scalar,
            SLoad | SStore | VLoad | VStore | VGather | VScatter => FuClass::Mem,
            VAdd | VLogic | VShift | VCmp | VMerge | VReduce | VMaskOp => FuClass::VecAny,
            VMul | VDiv | VSqrt => FuClass::VecFu2Only,
        }
    }

    /// Latency class of this opcode.
    #[must_use]
    pub fn lat_class(self) -> LatClass {
        use Opcode::*;
        match self {
            SAddA | SAdd | SMove | SLui | SetVl | SetVs | VAdd | VLogic | VShift | VCmp
            | VMerge | VReduce | VMaskOp => LatClass::Simple,
            SMul | VMul => LatClass::Mul,
            SDiv | VDiv | VSqrt => LatClass::DivSqrt,
            SLoad | SStore | VLoad | VStore | VGather | VScatter => LatClass::Mem,
            Branch | Jump | Call | Ret => LatClass::Branch,
        }
    }

    /// `true` if this opcode operates on a full vector (occupies a vector
    /// or memory unit for `VL` element slots).
    #[must_use]
    pub fn is_vector(self) -> bool {
        use Opcode::*;
        matches!(
            self,
            VLoad
                | VStore
                | VGather
                | VScatter
                | VAdd
                | VLogic
                | VShift
                | VCmp
                | VMerge
                | VReduce
                | VMul
                | VDiv
                | VSqrt
                | VMaskOp
        )
    }

    /// `true` if this opcode accesses memory.
    #[must_use]
    pub fn is_mem(self) -> bool {
        self.fu_class() == FuClass::Mem
    }

    /// `true` if this opcode reads memory.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, Opcode::SLoad | Opcode::VLoad | Opcode::VGather)
    }

    /// `true` if this opcode writes memory.
    #[must_use]
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::SStore | Opcode::VStore | Opcode::VScatter)
    }

    /// `true` if this opcode is a control transfer.
    #[must_use]
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Opcode::Branch | Opcode::Jump | Opcode::Call | Opcode::Ret
        )
    }

    /// Short mnemonic used in disassembly-style output.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        use Opcode::*;
        match self {
            SAddA => "add.a",
            SAdd => "add.s",
            SMul => "mul.s",
            SDiv => "div.s",
            SMove => "mov",
            SLui => "lui",
            SetVl => "setvl",
            SetVs => "setvs",
            Branch => "br",
            Jump => "jmp",
            Call => "call",
            Ret => "ret",
            SLoad => "ld",
            SStore => "st",
            VLoad => "vld",
            VStore => "vst",
            VGather => "vgather",
            VScatter => "vscatter",
            VAdd => "vadd",
            VLogic => "vlogic",
            VShift => "vshift",
            VCmp => "vcmp",
            VMerge => "vmerge",
            VReduce => "vreduce",
            VMul => "vmul",
            VDiv => "vdiv",
            VSqrt => "vsqrt",
            VMaskOp => "vmaskop",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fu2_only_are_mul_div_sqrt() {
        // Paper §2.1: FU1 executes everything *except* mul, div and sqrt.
        for op in Opcode::ALL {
            let fu2_only = matches!(op, Opcode::VMul | Opcode::VDiv | Opcode::VSqrt);
            assert_eq!(op.fu_class() == FuClass::VecFu2Only, fu2_only, "{op}");
        }
    }

    #[test]
    fn loads_and_stores_partition_mem_ops() {
        for op in Opcode::ALL {
            if op.is_mem() {
                assert!(op.is_load() ^ op.is_store(), "{op}");
            } else {
                assert!(!op.is_load() && !op.is_store(), "{op}");
            }
        }
    }

    #[test]
    fn vector_opcodes_are_not_scalar_unit() {
        for op in Opcode::ALL {
            if op.is_vector() {
                assert_ne!(op.fu_class(), FuClass::Scalar, "{op}");
            }
        }
    }

    #[test]
    fn control_ops_are_scalar_branch_class() {
        for op in Opcode::ALL {
            if op.is_control() {
                assert_eq!(op.fu_class(), FuClass::Scalar);
                assert_eq!(op.lat_class(), LatClass::Branch);
            }
        }
    }

    #[test]
    fn mnemonics_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {op}");
        }
    }
}
