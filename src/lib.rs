//! # oov — Out-of-Order Vector Architectures
//!
//! A full reproduction of *"Out-of-Order Vector Architectures"*
//! (R. Espasa, M. Valero, J. E. Smith — MICRO-30, 1997) as a Rust
//! workspace. This facade crate re-exports every component:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`isa`] | `oov-isa` | registers, opcodes, traces, latencies, machine configs |
//! | [`exec`] | `oov-exec` | architectural executor (golden model) |
//! | [`vcc`] | `oov-vcc` | kernel IR → scheduling → register allocation → trace |
//! | [`kernels`] | `oov-kernels` | the ten benchmark models + random workloads |
//! | [`mem`] | `oov-mem` | address bus, traffic accounting, scalar cache |
//! | [`refsim`] | `oov-ref` | in-order Convex C3400-like reference simulator |
//! | [`core`] | `oov-core` | the OOOVA: rename, queues, ROB, disambiguation, load elimination |
//! | [`stats`] | `oov-stats` | cycle-state breakdowns, counters, tables, charts |
//! | [`proto`] | `oov-proto` | dep-free JSON + fingerprints for bench artifacts and the wire protocol |
//! | [`obs`] | `oov-obs` | counters, gauges, mergeable histograms behind a named registry |
//!
//! The simulation server (`oov-serve`, with its `serve`/`client`/
//! `loadgen` binaries) sits on top of the harness crate `oov-bench`;
//! both are workspace members rather than facade modules.
//!
//! # Quickstart
//!
//! ```
//! use oov::core::OooSim;
//! use oov::isa::{OooConfig, RefConfig};
//! use oov::kernels::daxpy;
//! use oov::refsim::RefSim;
//! use oov::vcc::compile;
//!
//! let program = compile(&daxpy(8, 128));
//! let base = RefSim::new(RefConfig::default()).run(&program.trace);
//! let ooo = OooSim::new(OooConfig::default(), &program.trace).run();
//! assert!(ooo.stats.cycles <= base.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use oov_core as core;
pub use oov_exec as exec;
pub use oov_isa as isa;
pub use oov_kernels as kernels;
pub use oov_mem as mem;
pub use oov_obs as obs;
pub use oov_proto as proto;
pub use oov_ref as refsim;
pub use oov_stats as stats;
pub use oov_vcc as vcc;
